"""Star-like queries (paper §6, Figure 1).

A star-like query is a set of line-query *arms* sharing one non-output
attribute ``B``; Lemma 7 bounds the load by
``O( (NN')^{1/3}OUT^{1/2}/p^{2/3} + N'^{2/3}OUT^{1/3}/p^{2/3}
     + N·OUT^{2/3}/p + (N+N'+OUT)/p )``.

Algorithm (OUT-oblivious):

1. estimate per-arm reach counts ``d_i(b)`` with KMV sketches (§2.2) and
   bucket ``dom(B)`` by the sorting permutation ``φ_b`` *and* whether
   ``∏_{i<n} d_{φ(i)}(b) ≤ d_{φ(n)}(b)`` (*small*) or not (*large*);
2. **small buckets**: shrink every arm except ``φ(n)`` to ``R(A_j, B)``
   (Yannakakis along the arm; sizes ≤ N·√OUT by Lemma 10), join them on
   ``B`` into a combined relation, and solve the remaining *line query*
   towards ``A_{φ(n)}`` (§4);
3. **large buckets**: shrink all arms, split them into index sets
   ``I = {φ(n), φ(n−3), …}`` and ``J`` (Lemma 11 keeps both sides ≤
   OUT^{2/3} per value), join each side on ``B``, *uniformize* by the
   power-of-two degree of ``b`` on the ``I`` side, and run one matrix
   multiplication per degree class (§3.2);
4. ⊕-combine everything by the arm-end attributes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..data.query import TreeQuery
from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from ..primitives.dangling import remove_dangling
from ..primitives.degrees import attach_by_key, degree_table, lookup_table
from ..primitives.estimate_out import estimate_path_out
from ..primitives.reduce_by_key import reduce_by_key
from ..semiring import Semiring
from .arms import Arm, extract_arms
from .line import line_query
from .matmul import sparse_matmul
from .star import binarize, join_group_on_centre, unpack_pairs
from .two_way_join import aggregate_relation, join_aggregate_pair

__all__ = ["starlike_query", "shrink_arm", "arm_reach_estimates"]


def starlike_query(
    query: TreeQuery,
    relations: Dict[str, DistRelation],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """Evaluate a star-like query; result schema = sorted output attributes.

    Line queries (n = 2 arms) are delegated to §4 and pure stars to §5 via
    the shared machinery; this function handles the general arm mix.
    """
    if not query.is_star_like():
        raise ValueError("starlike_query requires a star-like query")
    out_schema = tuple(sorted(query.output))

    order = query.path_order()
    if order is not None:  # two arms ⇒ a line query
        rels = [relations[_rel_between(query, order[i], order[i + 1])]
                for i in range(len(order) - 1)]
        result = line_query(rels, order, semiring, salt)
        return _to_schema(result, out_schema, semiring, salt + 1)

    centre = query.centre()
    arms = extract_arms(query, centre)
    n = len(arms)
    arm_ends = [arm[-1][2] for arm in arms]

    relations = remove_dangling(query, relations)
    view = next(iter(relations.values())).view

    # ---- Step 1: per-arm d_i(b) and the (φ, small/large) bucketing. ---------
    reach_tables = [
        arm_reach_estimates(arm, relations, salt + 10 + i) for i, arm in enumerate(arms)
    ]
    merged: Optional[Distributed] = None
    for i, table in enumerate(reach_tables):
        tagged = table.map_items(lambda pair, i=i: (pair[0], ((i, pair[1]),)))
        merged = tagged if merged is None else merged.concat(tagged)
    profiles = reduce_by_key(
        merged, lambda pair: pair[0], lambda pair: pair[1], lambda a, b: a + b,
        salt + 30,
    )

    def bucket_of(profile: Tuple[Tuple[int, float], ...]) -> Tuple[Tuple[int, ...], str]:
        degrees = dict(profile)
        perm = tuple(sorted(range(n), key=lambda i: (degrees.get(i, 1.0), i)))
        product = 1.0
        for i in perm[:-1]:
            product *= max(1.0, degrees.get(i, 1.0))
        kind = "small" if product <= max(1.0, degrees.get(perm[-1], 1.0)) else "large"
        return (perm, kind)

    bucket_table = profiles.map_items(lambda pair: (pair[0], bucket_of(pair[1])))
    observed = sorted(
        lookup_table(
            reduce_by_key(
                bucket_table, lambda pair: pair[1], lambda _p: None,
                lambda a, _b: a, salt + 31, profile="distinct",
            )
        )
    )

    outputs: List[Distributed] = []
    for bucket_index, (perm, kind) in enumerate(observed):
        bucket_rels = _restrict_to_bucket(
            query, relations, centre, bucket_table, (perm, kind), salt + 40 + bucket_index
        )
        bucket_rels = remove_dangling(query, bucket_rels)
        if any(rel.total_size == 0 for rel in bucket_rels.values()):
            continue
        base_salt = salt + 100 * (bucket_index + 1)
        if kind == "small":
            outputs.append(
                _solve_small(arms, arm_ends, perm, centre, bucket_rels, semiring,
                             tuple(arm_ends), base_salt)
            )
        else:
            outputs.append(
                _solve_large(arms, arm_ends, perm, centre, bucket_rels, semiring,
                             tuple(arm_ends), base_salt)
            )

    union = Distributed.empty(view)
    for output in outputs:
        union = union.concat(output)
    result = DistRelation(tuple(arm_ends), union)
    return _to_schema(
        aggregate_relation(result, tuple(arm_ends), semiring, salt + 5),
        out_schema, semiring, salt + 6,
    )


# -- arm machinery ---------------------------------------------------------------


def arm_reach_estimates(
    arm: Arm, relations: Dict[str, DistRelation], salt: int
) -> Distributed:
    """``(b, d_i(b))`` pairs: distinct arm-end values reachable from ``b``.

    Exact (a degree count) for single-relation arms; KMV estimate (§2.2)
    for longer arms.
    """
    if len(arm) == 1:
        name, near, _far = arm[0]
        rel = relations[name]
        table = degree_table(rel.data, rel.key_fn((near,)), salt)
        return table.map_items(lambda pair: (pair[0][0], float(pair[1])))
    path_attrs = [arm[0][1]] + [step[2] for step in arm]
    path_rels = [relations[step[0]] for step in arm]
    _total, per_value = estimate_path_out(
        path_rels, path_attrs, base_salt=salt
    )
    return per_value.map_items(lambda pair: (_bare(pair[0]), max(1.0, pair[1])))


def shrink_arm(
    arm: Arm,
    relations: Dict[str, DistRelation],
    semiring: Semiring,
    salt: int,
) -> DistRelation:
    """Yannakakis along the arm: ``R(B, A_end) = Σ_internal ⋈ arm`` (§6
    steps 2.1/3.1).  Result schema ``(centre, end)``."""
    end = arm[-1][2]
    centre = arm[0][1]
    accumulated = _oriented(relations[arm[-1][0]], arm[-1][1], end)
    for step_index in range(len(arm) - 2, -1, -1):
        name, near, far = arm[step_index]
        accumulated = join_aggregate_pair(
            _oriented(relations[name], near, far),
            accumulated,
            (near, end),
            semiring,
            salt=salt + step_index,
        )
    if accumulated.schema != (centre, end):
        accumulated = _oriented(accumulated, centre, end)
    return accumulated


def _solve_small(
    arms: Sequence[Arm],
    arm_ends: Sequence[str],
    perm: Tuple[int, ...],
    centre: str,
    relations: Dict[str, DistRelation],
    semiring: Semiring,
    out_order: Tuple[str, ...],
    salt: int,
) -> Distributed:
    """§6 step 2: shrink all but the largest arm, reduce to a line query."""
    small_positions = list(perm[:-1])
    last = perm[-1]
    shrunk = [
        _oriented(shrink_arm(arms[i], relations, semiring, salt + 10 * k),
                  arm_ends[i], centre)
        for k, i in enumerate(small_positions)
    ]
    joined, joined_attrs = join_group_on_centre(
        shrunk, [arm_ends[i] for i in small_positions], centre, semiring, salt + 70
    )
    combined = binarize(joined, joined_attrs, "__small", centre)

    # Line query: __small — B — … — A_{φ(n)} along the remaining arm.
    tail_arm = arms[last]
    line_attrs = ["__small", centre] + [step[2] for step in tail_arm]
    line_rels = [combined] + [relations[step[0]] for step in tail_arm]
    line_result = line_query(line_rels, line_attrs, semiring, salt + 80)
    # line_result schema: ("__small", A_{φ(n)}).
    return unpack_pairs(
        _pairify(line_result),
        joined_attrs,
        (arm_ends[last],),
        out_order,
    )


def _solve_large(
    arms: Sequence[Arm],
    arm_ends: Sequence[str],
    perm: Tuple[int, ...],
    centre: str,
    relations: Dict[str, DistRelation],
    semiring: Semiring,
    out_order: Tuple[str, ...],
    salt: int,
) -> Distributed:
    """§6 step 3: shrink all arms, Lemma-11 index split, uniformized matmuls."""
    n = len(arms)
    shrunk = [
        _oriented(shrink_arm(arms[i], relations, semiring, salt + 10 * i),
                  arm_ends[i], centre)
        for i in range(n)
    ]
    in_i = set()
    position = n
    while position >= 1:
        in_i.add(perm[position - 1])
        position -= 3
    i_positions = sorted(in_i)
    j_positions = [i for i in range(n) if i not in in_i]

    left_joined, left_attrs = join_group_on_centre(
        [shrunk[i] for i in i_positions],
        [arm_ends[i] for i in i_positions], centre, semiring, salt + 200,
    )
    right_joined, right_attrs = join_group_on_centre(
        [shrunk[i] for i in j_positions],
        [arm_ends[i] for i in j_positions], centre, semiring, salt + 220,
    )
    left = binarize(left_joined, left_attrs, "__ai", centre)
    right = binarize(right_joined, right_attrs, "__aj", centre)

    # §6 step 3.3: uniformize by the power-of-two degree class of b in left.
    left_degrees = degree_table(left.data, left.key_fn((centre,)), salt + 240)
    class_table = left_degrees.map_items(
        lambda pair: (pair[0][0], int(math.floor(math.log2(max(1, pair[1])))))
    )
    classes = sorted(
        lookup_table(
            reduce_by_key(class_table, lambda pair: pair[1], lambda _p: None,
                          lambda a, _b: a, salt + 241, profile="distinct")
        )
    )
    left_tagged = attach_by_key(
        left.data, class_table,
        lambda item, idx=left.attr_index(centre): item[0][idx],
        default=None, salt=salt + 242,
    )
    right_tagged = attach_by_key(
        right.data, class_table,
        lambda item, idx=right.attr_index(centre): item[0][idx],
        default=None, salt=salt + 243,
    )

    view = left.view
    union = Distributed.empty(view)
    for class_index, degree_class in enumerate(classes):
        left_part = DistRelation(
            left.schema,
            left_tagged.filter_items(lambda e, c=degree_class: e[1] == c)
            .map_items(lambda e: e[0]),
        )
        right_part = DistRelation(
            right.schema,
            right_tagged.filter_items(lambda e, c=degree_class: e[1] == c)
            .map_items(lambda e: e[0]),
        )
        if left_part.total_size == 0 or right_part.total_size == 0:
            continue
        product = sparse_matmul(
            left_part, right_part, semiring, reduce_dangling=False,
            salt=salt + 250 + class_index,
        )
        union = union.concat(
            unpack_pairs(product, left_attrs, right_attrs, out_order)
        )
    return union


# -- small utilities --------------------------------------------------------------


def _bare(key: Any) -> Any:
    if isinstance(key, tuple) and len(key) == 1:
        return key[0]
    return key


def _oriented(rel: DistRelation, left: str, right: str) -> DistRelation:
    if rel.schema == (left, right):
        return rel
    if set(rel.schema) != {left, right}:
        raise ValueError(f"schema {rel.schema!r} is not ({left}, {right})")
    li, ri = rel.attr_index(left), rel.attr_index(right)
    return DistRelation(
        (left, right),
        rel.data.map_items(lambda item: ((item[0][li], item[0][ri]), item[1])),
    )


def _pairify(rel: DistRelation) -> DistRelation:
    """Adapt a (combined, scalar) binary relation for
    :func:`~repro.core.star.unpack_pairs`: the left column is already a
    component tuple, the right column is wrapped as a 1-tuple (even when the
    value itself happens to be a tuple, e.g. a recursion-combined attribute)."""
    data = rel.data.map_items(
        lambda item: ((item[0][0], (item[0][1],)), item[1])
    )
    return DistRelation(rel.schema, data)


def _restrict_to_bucket(
    query: TreeQuery,
    relations: Dict[str, DistRelation],
    centre: str,
    bucket_table: Distributed,
    bucket: Tuple,
    salt: int,
) -> Dict[str, DistRelation]:
    """Filter the centre-incident relations to the bucket's B values."""
    restricted = dict(relations)
    for rel_index, _neighbour in query.adjacency[centre]:
        name = query.relations[rel_index][0]
        rel = restricted[name]
        idx = rel.attr_index(centre)
        tagged = attach_by_key(
            rel.data, bucket_table, lambda item, i=idx: item[0][i],
            default=None, salt=salt,
        )
        restricted[name] = DistRelation(
            rel.schema,
            tagged.filter_items(lambda entry, b=bucket: entry[1] == b)
            .map_items(lambda entry: entry[0]),
        )
    return restricted


def _rel_between(query: TreeQuery, left: str, right: str) -> str:
    for name, attrs in query.relations:
        if set(attrs) == {left, right}:
            return name
    raise KeyError((left, right))


def _to_schema(
    rel: DistRelation, schema: Tuple[str, ...], semiring: Semiring, salt: int
) -> DistRelation:
    """Reorder columns to ``schema`` (local op; aggregation already done)."""
    if rel.schema == schema:
        return rel
    indices = [rel.attr_index(a) for a in schema]
    data = rel.data.map_items(
        lambda item: (tuple(item[0][i] for i in indices), item[1])
    )
    return DistRelation(schema, data)
