"""Star queries (paper §5).

``∑_B R1(A1,B) ⋈ … ⋈ Rn(An,B)`` with load
``O( (N·OUT/p)^{2/3} + N·OUT^{1/2}/p + (N+OUT)/p )`` (Theorem 5),
*oblivious* to OUT:

1. compute per-value degree profiles ``(d_1(b), …, d_n(b))`` and bucket
   ``dom(B)`` by the permutation ``φ_b`` that sorts the profile — at most
   ``n!`` buckets (a constant);
2. for each bucket, join the odd-position relations into ``R_φ(A_odd, B)``
   and the even-position ones into ``R_φ(A_even, B)``; Lemmas 5–6 bound both
   by ``N·√OUT``;
3. reduce to one matrix multiplication per bucket (output-sensitive, §3.2);
4. ⊕-combine the bucket results (they may share output keys).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..data.query import TreeQuery
from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from ..primitives.dangling import remove_dangling
from ..primitives.degrees import attach_by_key, degree_table, lookup_table
from ..primitives.reduce_by_key import reduce_by_key
from ..semiring import Semiring
from .matmul import sparse_matmul
from .two_way_join import aggregate_relation, join_aggregate_pair

__all__ = ["star_query", "join_group_on_centre", "binarize", "unpack_pairs"]


def star_query(
    relations: Sequence[DistRelation],
    arm_attrs: Sequence[str],
    centre: str,
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """Evaluate the star query; result schema is ``tuple(arm_attrs)``.

    ``relations[i]`` must contain attributes ``{arm_attrs[i], centre}``.
    """
    n = len(relations)
    if n != len(arm_attrs) or n < 2:
        raise ValueError("star query needs ≥ 2 relations, one arm attribute each")
    relations = [_orient(rel, arm_attrs[i], centre) for i, rel in enumerate(relations)]

    # Dangling-tuple removal: b must appear in every relation.
    names = [f"__S{i}" for i in range(n)]
    query = TreeQuery(
        tuple((names[i], (arm_attrs[i], centre)) for i in range(n)),
        frozenset(arm_attrs),
    )
    reduced = remove_dangling(query, dict(zip(names, relations)))
    relations = [reduced[name] for name in names]

    if n == 2:
        return sparse_matmul(
            relations[0], relations[1], semiring, reduce_dangling=False, salt=salt
        )

    # ---- Step 1: degree profiles and permutation buckets. -------------------
    profile_parts: List[Distributed] = []
    for i, rel in enumerate(relations):
        table = degree_table(rel.data, rel.key_fn((centre,)), salt + i)
        profile_parts.append(
            table.map_items(lambda pair, i=i: (pair[0][0], ((i, pair[1]),)))
        )
    merged = profile_parts[0]
    for extra in profile_parts[1:]:
        merged = merged.concat(extra)
    profiles = reduce_by_key(
        merged, lambda pair: pair[0], lambda pair: pair[1], lambda a, b: a + b,
        salt + 100,
    )

    def permutation_of(profile: Tuple[Tuple[int, int], ...]) -> Tuple[int, ...]:
        degrees = dict(profile)
        return tuple(sorted(range(n), key=lambda i: (degrees.get(i, 0), i)))

    class_table = profiles.map_items(
        lambda pair: (pair[0], permutation_of(pair[1]))
    )
    observed = set(
        lookup_table(
            reduce_by_key(
                class_table, lambda pair: pair[1], lambda _p: None, lambda a, _b: a,
                salt + 101, profile="distinct",
            )
        )
    )

    # Tag every tuple with its b-bucket once per relation.
    tagged = [
        attach_by_key(
            rel.data,
            class_table,
            lambda item, idx=rel.attr_index(centre): item[0][idx],
            default=None,
            salt=salt + 102 + i,
        )
        for i, rel in enumerate(relations)
    ]

    outputs: List[Distributed] = []
    for class_index, perm in enumerate(sorted(observed)):
        bucket_rels = [
            DistRelation(
                relations[i].schema,
                tagged[i]
                .filter_items(lambda entry, perm=perm: entry[1] == perm)
                .map_items(lambda entry: entry[0]),
            )
            for i in range(n)
        ]
        if any(rel.total_size == 0 for rel in bucket_rels):
            continue
        odd_positions = [perm[k] for k in range(0, n, 2)]  # positions 1,3,… (1-based)
        even_positions = [perm[k] for k in range(1, n, 2)]
        odd_rel, odd_attrs = join_group_on_centre(
            [bucket_rels[i] for i in odd_positions],
            [arm_attrs[i] for i in odd_positions],
            centre, semiring, salt + 200 + 10 * class_index,
        )
        even_rel, even_attrs = join_group_on_centre(
            [bucket_rels[i] for i in even_positions],
            [arm_attrs[i] for i in even_positions],
            centre, semiring, salt + 205 + 10 * class_index,
        )
        left = binarize(odd_rel, odd_attrs, "__odd", centre)
        right = binarize(even_rel, even_attrs, "__even", centre)
        product = sparse_matmul(
            left, right, semiring, reduce_dangling=False,
            salt=salt + 300 + 10 * class_index,
        )
        outputs.append(
            unpack_pairs(product, odd_attrs, even_attrs, tuple(arm_attrs))
        )

    view = relations[0].view
    union = Distributed.empty(view)
    for output in outputs:
        union = union.concat(output)
    result = DistRelation(tuple(arm_attrs), union)
    return aggregate_relation(result, tuple(arm_attrs), semiring, salt + 400)


def join_group_on_centre(
    relations: Sequence[DistRelation],
    attrs: Sequence[str],
    centre: str,
    semiring: Semiring,
    salt: int,
) -> Tuple[DistRelation, Tuple[str, ...]]:
    """Full join ``⋈_i R_i(A_i, B)`` on the shared centre.

    Returns the joined relation (schema ``(*attrs, centre)``) and the arm
    attribute order.  Uses the skew-resilient pairwise join.
    """
    accumulated = relations[0]
    acc_attrs: Tuple[str, ...] = (attrs[0],)
    for offset, rel in enumerate(relations[1:]):
        keep = acc_attrs + (attrs[offset + 1], centre)
        accumulated = join_aggregate_pair(
            accumulated, rel, keep, semiring, salt=salt + offset
        )
        acc_attrs = acc_attrs + (attrs[offset + 1],)
    return accumulated, acc_attrs


def binarize(
    relation: DistRelation,
    arm_attrs: Sequence[str],
    combined_name: str,
    centre: str,
) -> DistRelation:
    """Fold the arm columns into one combined column: schema
    ``(combined_name, centre)``; values become tuples (local op)."""
    arm_indices = [relation.attr_index(a) for a in arm_attrs]
    centre_index = relation.attr_index(centre)
    data = relation.data.map_items(
        lambda item: (
            (tuple(item[0][i] for i in arm_indices), item[0][centre_index]),
            item[1],
        )
    )
    return DistRelation((combined_name, centre), data)


def unpack_pairs(
    product: DistRelation,
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
    out_order: Tuple[str, ...],
) -> Distributed:
    """Expand a (combined-left, combined-right) matmul result into flat keys
    ordered by ``out_order`` (local op)."""
    positions: Dict[str, Tuple[int, int]] = {}
    for i, attr in enumerate(left_attrs):
        positions[attr] = (0, i)
    for i, attr in enumerate(right_attrs):
        positions[attr] = (1, i)
    plan = [positions[attr] for attr in out_order]
    return product.data.map_items(
        lambda item: (tuple(item[0][side][index] for side, index in plan), item[1])
    )


def _orient(rel: DistRelation, arm: str, centre: str) -> DistRelation:
    if rel.schema == (arm, centre):
        return rel
    if set(rel.schema) != {arm, centre}:
        raise ValueError(f"relation schema {rel.schema!r} is not ({arm}, {centre})")
    ai, ci = rel.attr_index(arm), rel.attr_index(centre)
    return DistRelation(
        (arm, centre),
        rel.data.map_items(lambda item: ((item[0][ai], item[0][ci]), item[1])),
    )
