"""Sparse matrix multiplication — Theorem 1 (paper §3).

``sparse_matmul`` is the complete algorithm: remove dangling tuples,
estimate OUT (§2.2), and run whichever of the §3.1 worst-case algorithm and
the §3.2 output-sensitive algorithm has the smaller load target, achieving

    O( (N1+N2)/p + min( √(N1N2)/√p , (N1N2)^{1/3}·OUT^{1/3}/p^{2/3} ) )

w.h.p. — optimal in the semiring MPC model (Theorems 2–3).
"""

from __future__ import annotations

from typing import Literal, Optional, Tuple

from ..data.query import TreeQuery
from ..data.relation import DistRelation
from ..mpc.cluster import ClusterView
from ..primitives.dangling import remove_dangling
from ..primitives.estimate_out import estimate_path_out
from ..semiring import Semiring
from .matmul_output_sensitive import (
    linear_sparse_mm,
    matmul_output_sensitive,
    output_sensitive_load_target,
)
from .matmul_worst_case import (
    _matmul_attrs,
    matmul_unbalanced,
    matmul_worst_case,
    worst_case_load_target,
)

__all__ = ["sparse_matmul", "MatmulStrategy"]

MatmulStrategy = Literal[
    "auto", "worst-case", "output-sensitive", "linear", "broadcast"
]


def sparse_matmul(
    r1: DistRelation,
    r2: DistRelation,
    semiring: Semiring,
    strategy: MatmulStrategy = "auto",
    reduce_dangling: bool = True,
    salt: int = 0,
) -> DistRelation:
    """Compute ``∑_B R1(A,B) ⋈ R2(B,C)`` on the relations' cluster view.

    The result is a :class:`DistRelation` over ``(A, C)`` with fully
    aggregated annotations.  ``strategy`` forces a specific §3 algorithm;
    ``"auto"`` is Theorem 1's min-load choice.
    """
    view = r1.view
    a_attr, b_attr, c_attr = _matmul_attrs(r1, r2)

    if reduce_dangling:
        query = TreeQuery(
            (("__R1", (a_attr, b_attr)), ("__R2", (b_attr, c_attr))),
            frozenset({a_attr, c_attr}),
        )
        reduced = remove_dangling(
            query,
            {
                "__R1": DistRelation((a_attr, b_attr), r1.data),
                "__R2": DistRelation((b_attr, c_attr), r2.data),
            },
        )
        r1 = DistRelation(r1.schema, reduced["__R1"].data)
        r2 = DistRelation(r2.schema, reduced["__R2"].data)

    n1, n2 = r1.total_size, r2.total_size
    p = view.p

    if strategy == "worst-case":
        return matmul_worst_case(r1, r2, semiring, salt)
    if strategy == "linear":
        return linear_sparse_mm(r1, r2, semiring, salt)
    if strategy == "broadcast":
        return matmul_unbalanced(r1, r2, semiring)
    if strategy == "output-sensitive":
        return matmul_output_sensitive(r1, r2, semiring, salt=salt)

    # Theorem 1 dispatch.
    if n1 == 0 or n2 == 0:
        return matmul_worst_case(r1, r2, semiring, salt)  # returns empty
    if n1 * p < n2 or n2 * p < n1:
        return matmul_unbalanced(r1, r2, semiring)

    out_estimate, out_a_table = estimate_path_out(
        [r1, r2], [a_attr, b_attr, c_attr], base_salt=salt + 900
    )
    worst = worst_case_load_target(n1, n2, p)
    sensitive = output_sensitive_load_target(n1, n2, out_estimate, p)
    if sensitive < worst:
        return matmul_output_sensitive(
            r1, r2, semiring, out_estimate, out_a_table, salt=salt
        )
    return matmul_worst_case(r1, r2, semiring, salt)
