"""Top-level query executor: classify, dispatch, meter (paper §1.5/Table 1).

``run_query`` is the library's front door: it loads an :class:`Instance`
onto a simulated cluster, picks the paper's algorithm for the query's class
(or the requested one), and returns the result together with the measured
:class:`~repro.mpc.stats.CostReport`.

Dispatch goes through a declarative registry (:data:`ALGORITHMS`): each
entry couples an algorithm name with the structural predicate deciding
whether a query has the required shape and the function that runs it.  The
registry is introspectable — :func:`applicable_algorithms` is how the
conformance fuzzer (:mod:`repro.conformance`) enumerates every algorithm a
random query can legally exercise, instead of hardcoding the zoo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Literal, Optional

from ..data.query import Instance, QueryClass, TreeQuery
from ..data.relation import DistRelation, Relation
from ..errors import ApplicabilityError
from ..mpc.cluster import ClusterView, MPCCluster
from ..mpc.stats import CostReport
from ..obs import profile as _obs_profile
from ..semiring import Semiring
from .line import line_query
from .star import star_query
from .starlike import starlike_query
from .tree import tree_query
from .two_way_join import aggregate_relation
from .yannakakis_mpc import yannakakis_mpc_distributed

__all__ = [
    "run_query",
    "QueryResult",
    "Algorithm",
    "AlgorithmSpec",
    "ALGORITHMS",
    "AUTO_CHOICE",
    "applicable_algorithms",
]

Algorithm = Literal[
    "auto",
    "cost",
    "yannakakis",
    "matmul",
    "matmul-worst-case",
    "matmul-output-sensitive",
    "line",
    "star",
    "star-like",
    "tree",
]


@dataclass
class QueryResult:
    """Result of one distributed query execution."""

    #: The answer, schema = output attributes in sorted order.
    relation: Relation
    #: Measured cluster costs (the paper's load L, rounds, communication…).
    report: CostReport
    #: Query class detected by :meth:`TreeQuery.classify`.
    query_class: QueryClass
    #: Which algorithm actually ran.
    algorithm: str

    @property
    def out_size(self) -> int:
        return len(self.relation)


def run_query(
    instance: Instance,
    p: int = 8,
    cluster: Optional[MPCCluster] = None,
    algorithm: Algorithm = "auto",
    validate: bool = False,
    backend: Optional[str] = None,
    config: Optional["ExecutionConfig"] = None,
) -> QueryResult:
    """Evaluate ``instance`` on a (fresh or supplied) simulated MPC cluster.

    ``algorithm="auto"`` picks the paper's new algorithm for the query's
    class — the second column of Table 1 — while ``"yannakakis"`` forces the
    baseline (first column).  ``algorithm="cost"`` asks the cost-based
    planner (:mod:`repro.planner`) to pick: it scores every applicable
    algorithm with the calibrated Table 1 cost models and the run carries
    the decision in ``report.plan`` (``config.stats_mode="in-model"``
    collects the planner's statistics on the cluster, metered).  Explicit
    names force that algorithm and raise if the query does not have the
    required shape.

    ``config`` (an :class:`~repro.config.ExecutionConfig`) supplies every
    knob not given explicitly; explicit arguments win.  ``backend`` selects
    the kernel implementation (``"pytuple"``/``"numpy"``/``"columnar"``/
    ``"auto"``, see :mod:`repro.backends`) — results, cost reports, and
    traces are identical across backends, only wall-clock differs.

    ``validate=True`` cross-checks the distributed answer against the
    sequential oracle (annotations included) and raises ``AssertionError``
    on any mismatch — a debugging aid for custom semirings and workloads;
    the oracle runs outside the cluster, so metering is unaffected.
    """
    if config is not None:
        p = config.p
        if algorithm == "auto":
            algorithm = config.algorithm
        validate = validate or config.validate
        if backend is None:
            backend = config.backend
        if cluster is None:
            cluster = config.with_backend(backend).make_cluster(instance.total_size)
    if cluster is None:
        from ..backends.dispatch import resolve_backend

        cluster = MPCCluster(p, backend=resolve_backend(backend, instance.total_size))
    view = cluster.view()
    query = instance.query
    semiring = instance.semiring
    query_class = query.classify()

    profiler = cluster.tracker.profiler
    chosen = algorithm
    plan = None
    if algorithm == "auto":
        chosen = AUTO_CHOICE[query_class]
    elif algorithm == "cost":
        from ..planner import plan_query

        stats_mode = getattr(config, "stats_mode", "offline") if config else "offline"
        if profiler is not None:
            profiler.start("plan", kind="step")
        try:
            plan = plan_query(
                instance,
                p=cluster.p,
                stats_mode=stats_mode,
                view=view if stats_mode == "in-model" else None,
                backend=cluster.backend,
            )
        finally:
            if profiler is not None:
                profiler.stop()
        chosen = plan.algorithm

    tracer = cluster.tracker.tracer
    if tracer is not None:
        tracer.label = chosen
        if plan is not None:
            # Header event: why this algorithm ran (not load-bearing — the
            # "plan" op is outside LOAD_OPS, so trace-rebuilt aggregates
            # are untouched).
            tracer.emit("plan", -1, (), detail=plan.summary())

    out_schema = tuple(sorted(query.output))
    if profiler is None:
        distributed = _dispatch(chosen, instance, view)
        if distributed.schema != out_schema:
            distributed = aggregate_relation(distributed, out_schema, semiring)
        relation = distributed.collect("result", semiring)
    else:
        # Root span per run (one profiler may observe many runs, e.g. a
        # table1 sweep); activation makes the profiler visible to the
        # vectorized kernels, which receive bare arrays and cannot reach
        # the cluster through their arguments.
        token = _obs_profile.activate(profiler)
        profiler.start(f"run:{chosen}", kind="run", backend=cluster.backend)
        try:
            distributed = _dispatch(chosen, instance, view)
            if distributed.schema != out_schema:
                with profiler.span("finalize", kind="step"):
                    distributed = aggregate_relation(
                        distributed, out_schema, semiring
                    )
            with profiler.span("collect", kind="step"):
                relation = distributed.collect("result", semiring)
        finally:
            profiler.stop()
            _obs_profile.activate(token)
    if validate:
        from ..ram.evaluate import evaluate

        expected = evaluate(instance)
        if relation.tuples != expected.tuples:
            raise AssertionError(
                f"distributed result disagrees with the oracle: "
                f"{len(relation)} vs {len(expected)} tuples"
            )
    report = cluster.report()
    report.algorithm = chosen
    if plan is not None:
        report.plan = plan.summary()
    return QueryResult(
        relation=relation,
        report=report,
        query_class=query_class,
        algorithm=chosen,
    )


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered distributed algorithm.

    ``applies`` is the structural predicate (a query may satisfy several —
    a matmul query is also a legal star and star-like query), ``run``
    evaluates a pre-loaded instance, and ``requirement`` names the shape in
    error messages.
    """

    name: str
    applies: Callable[[TreeQuery], bool]
    run: Callable[[Instance, ClusterView, Dict[str, DistRelation]], DistRelation]
    requirement: str


def _run_yannakakis(
    instance: Instance, view: ClusterView, loaded: Dict[str, DistRelation]
) -> DistRelation:
    return yannakakis_mpc_distributed(instance, view)


def _run_line(
    instance: Instance,
    view: ClusterView,
    loaded: Dict[str, DistRelation],
    matmul_strategy: str = "auto",
) -> DistRelation:
    query = instance.query
    order = query.path_order()
    rels = [
        loaded[_rel_between(query, order[i], order[i + 1])]
        for i in range(len(order) - 1)
    ]
    return line_query(rels, order, instance.semiring,
                      matmul_strategy=matmul_strategy)


def _run_matmul_worst_case(
    instance: Instance, view: ClusterView, loaded: Dict[str, DistRelation]
) -> DistRelation:
    return _run_line(instance, view, loaded, matmul_strategy="worst-case")


def _run_matmul_output_sensitive(
    instance: Instance, view: ClusterView, loaded: Dict[str, DistRelation]
) -> DistRelation:
    return _run_line(instance, view, loaded, matmul_strategy="output-sensitive")


def _run_star(
    instance: Instance, view: ClusterView, loaded: Dict[str, DistRelation]
) -> DistRelation:
    query = instance.query
    centre = next(
        a for a in query.attributes
        if all(a in attrs for _n, attrs in query.relations)
    )
    arm_attrs = []
    rels = []
    for name, attrs in query.relations:
        arm_attrs.append(attrs[0] if attrs[1] == centre else attrs[1])
        rels.append(loaded[name])
    return star_query(rels, arm_attrs, centre, instance.semiring)


def _run_starlike(
    instance: Instance, view: ClusterView, loaded: Dict[str, DistRelation]
) -> DistRelation:
    return starlike_query(instance.query, loaded, instance.semiring)


def _run_tree(
    instance: Instance, view: ClusterView, loaded: Dict[str, DistRelation]
) -> DistRelation:
    return tree_query(instance.query, loaded, instance.semiring)


#: The algorithm zoo, in dispatch-preference order.  ``yannakakis`` and
#: ``tree`` accept every tree query; the others require their paper shape.
ALGORITHMS: Dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            "yannakakis",
            lambda query: True,
            _run_yannakakis,
            "a tree query",
        ),
        AlgorithmSpec(
            "matmul",
            lambda query: query.is_matmul(),
            _run_line,
            "a matmul (two-relation line) query",
        ),
        AlgorithmSpec(
            "matmul-worst-case",
            lambda query: query.is_matmul(),
            _run_matmul_worst_case,
            "a matmul (two-relation line) query",
        ),
        AlgorithmSpec(
            "matmul-output-sensitive",
            lambda query: query.is_matmul(),
            _run_matmul_output_sensitive,
            "a matmul (two-relation line) query",
        ),
        AlgorithmSpec(
            "line",
            lambda query: query.is_line() or query.is_matmul(),
            _run_line,
            "a line query",
        ),
        AlgorithmSpec(
            "star",
            lambda query: query.is_star(),
            _run_star,
            "a star query",
        ),
        AlgorithmSpec(
            "star-like",
            lambda query: query.is_star_like(),
            _run_starlike,
            "star-like",
        ),
        AlgorithmSpec(
            "tree",
            lambda query: True,
            _run_tree,
            "a tree query",
        ),
    )
}

#: The executor's ``algorithm="auto"`` choice per query class (Table 1).
AUTO_CHOICE: Dict[QueryClass, str] = {
    "free-connex": "yannakakis",
    "matmul": "line",
    "line": "line",
    "star": "star",
    "star-like": "star-like",
    "twig": "tree",
    "tree": "tree",
}


def applicable_algorithms(query: TreeQuery) -> List[str]:
    """Every registered algorithm whose shape predicate accepts ``query``.

    Always non-empty (``yannakakis`` and ``tree`` accept everything); the
    conformance fuzzer runs all of them differentially against the oracle.
    """
    return [name for name, spec in ALGORITHMS.items() if spec.applies(query)]


def _dispatch(chosen: str, instance: Instance, view: ClusterView) -> DistRelation:
    query = instance.query
    spec = ALGORITHMS.get(chosen)
    if spec is None:
        raise ApplicabilityError(
            f"unknown algorithm {chosen!r}; registered: "
            f"{', '.join(ALGORITHMS)} (plus the 'auto' and 'cost' dispatchers)"
        )
    if not spec.applies(query):
        raise ApplicabilityError(
            f"algorithm {chosen!r} needs {spec.requirement}, but this query "
            f"is {query.classify()}; applicable here: "
            f"{', '.join(applicable_algorithms(query))}"
        )
    profiler = view.tracker.profiler
    semiring = instance.semiring
    if profiler is None:
        loaded: Dict[str, DistRelation] = {
            name: DistRelation.load(view, instance.relation(name), semiring)
            for name, _ in query.relations
        }
        return spec.run(instance, view, loaded)
    with profiler.span("load", kind="step"):
        loaded = {
            name: DistRelation.load(view, instance.relation(name), semiring)
            for name, _ in query.relations
        }
    with profiler.span("execute", kind="step"):
        return spec.run(instance, view, loaded)


def _rel_between(query, left: str, right: str) -> str:
    for name, attrs in query.relations:
        if set(attrs) == {left, right}:
            return name
    raise KeyError((left, right))
