"""Top-level query executor: classify, dispatch, meter (paper §1.5/Table 1).

``run_query`` is the library's front door: it loads an :class:`Instance`
onto a simulated cluster, picks the paper's algorithm for the query's class
(or the requested one), and returns the result together with the measured
:class:`~repro.mpc.stats.CostReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional

from ..data.query import Instance, QueryClass
from ..data.relation import DistRelation, Relation
from ..mpc.cluster import ClusterView, MPCCluster
from ..mpc.stats import CostReport
from ..semiring import Semiring
from .line import line_query
from .star import star_query
from .starlike import starlike_query
from .tree import tree_query
from .two_way_join import aggregate_relation
from .yannakakis_mpc import yannakakis_mpc_distributed

__all__ = ["run_query", "QueryResult", "Algorithm"]

Algorithm = Literal["auto", "yannakakis", "matmul", "line", "star", "star-like", "tree"]


@dataclass
class QueryResult:
    """Result of one distributed query execution."""

    #: The answer, schema = output attributes in sorted order.
    relation: Relation
    #: Measured cluster costs (the paper's load L, rounds, communication…).
    report: CostReport
    #: Query class detected by :meth:`TreeQuery.classify`.
    query_class: QueryClass
    #: Which algorithm actually ran.
    algorithm: str

    @property
    def out_size(self) -> int:
        return len(self.relation)


def run_query(
    instance: Instance,
    p: int = 8,
    cluster: Optional[MPCCluster] = None,
    algorithm: Algorithm = "auto",
    validate: bool = False,
) -> QueryResult:
    """Evaluate ``instance`` on a (fresh or supplied) simulated MPC cluster.

    ``algorithm="auto"`` picks the paper's new algorithm for the query's
    class — the second column of Table 1 — while ``"yannakakis"`` forces the
    baseline (first column).  Explicit class names force that algorithm and
    raise if the query does not have the required shape.

    ``validate=True`` cross-checks the distributed answer against the
    sequential oracle (annotations included) and raises ``AssertionError``
    on any mismatch — a debugging aid for custom semirings and workloads;
    the oracle runs outside the cluster, so metering is unaffected.
    """
    if cluster is None:
        cluster = MPCCluster(p)
    view = cluster.view()
    query = instance.query
    semiring = instance.semiring
    query_class = query.classify()

    chosen = algorithm
    if algorithm == "auto":
        chosen = {
            "free-connex": "yannakakis",
            "matmul": "line",
            "line": "line",
            "star": "star",
            "star-like": "star-like",
            "twig": "tree",
            "tree": "tree",
        }[query_class]

    tracer = cluster.tracker.tracer
    if tracer is not None:
        tracer.label = chosen

    distributed = _dispatch(chosen, instance, view)
    out_schema = tuple(sorted(query.output))
    if distributed.schema != out_schema:
        distributed = aggregate_relation(distributed, out_schema, semiring)
    relation = distributed.collect("result", semiring)
    if validate:
        from ..ram.evaluate import evaluate

        expected = evaluate(instance)
        if relation.tuples != expected.tuples:
            raise AssertionError(
                f"distributed result disagrees with the oracle: "
                f"{len(relation)} vs {len(expected)} tuples"
            )
    return QueryResult(
        relation=relation,
        report=cluster.report(),
        query_class=query_class,
        algorithm=chosen,
    )


def _dispatch(chosen: str, instance: Instance, view: ClusterView) -> DistRelation:
    query = instance.query
    semiring = instance.semiring
    loaded: Dict[str, DistRelation] = {
        name: DistRelation.load(view, instance.relation(name))
        for name, _ in query.relations
    }

    if chosen == "yannakakis":
        return yannakakis_mpc_distributed(instance, view)

    if chosen in ("matmul", "line"):
        order = query.path_order()
        if order is None or not (query.is_line() or query.is_matmul()):
            raise ValueError(f"query is not a line query: {query.classify()}")
        rels = [
            loaded[_rel_between(query, order[i], order[i + 1])]
            for i in range(len(order) - 1)
        ]
        return line_query(rels, order, semiring)

    if chosen == "star":
        if not query.is_star():
            raise ValueError(f"query is not a star query: {query.classify()}")
        centre = next(
            a for a in query.attributes
            if all(a in attrs for _n, attrs in query.relations)
        )
        arm_attrs = []
        rels = []
        for name, attrs in query.relations:
            arm_attrs.append(attrs[0] if attrs[1] == centre else attrs[1])
            rels.append(loaded[name])
        return star_query(rels, arm_attrs, centre, semiring)

    if chosen == "star-like":
        if not query.is_star_like():
            raise ValueError(f"query is not star-like: {query.classify()}")
        return starlike_query(query, loaded, semiring)

    if chosen == "tree":
        return tree_query(query, loaded, semiring)

    raise ValueError(f"unknown algorithm {chosen!r}")


def _rel_between(query, left: str, right: str) -> str:
    for name, attrs in query.relations:
        if set(attrs) == {left, right}:
            return name
    raise KeyError((left, right))
