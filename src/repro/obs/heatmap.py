"""ASCII per-round × per-server load heatmaps.

Reading guide (see docs/observability.md): rows are communication rounds,
columns are servers; each cell's glyph encodes that server's receive count
in that round relative to the run's hottest cell (the paper's ``L``).  The
right margin prints each round's max so the round responsible for ``L``
is visible at a glance; the hottest cell is marked with ``@``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["render_heatmap", "GLYPHS"]

#: Intensity ramp, blank (zero) → ``@`` (the global maximum).
GLYPHS = " .:-=+*#%@"


def _bucket_columns(row: Sequence[int], groups: int) -> List[int]:
    """Fold a wide row into ``groups`` columns (max within each bucket)."""
    n = len(row)
    bounds = [round(i * n / groups) for i in range(groups + 1)]
    return [
        max(row[bounds[i]:bounds[i + 1]]) if bounds[i] < bounds[i + 1] else 0
        for i in range(groups)
    ]


def render_heatmap(
    matrix: Sequence[Sequence[int]],
    servers: Optional[Sequence[int]] = None,
    max_columns: int = 64,
) -> str:
    """Render a (rounds × servers) load matrix as an ASCII heatmap.

    ``servers`` labels the columns with global ids (defaults to 0..p-1).
    Matrices wider than ``max_columns`` are bucketed column-wise (each
    printed cell is then the max of its server bucket, flagged in the
    legend).
    """
    if not matrix or not any(len(row) for row in matrix):
        return "(empty trace: no deliveries recorded)"
    width = max(len(row) for row in matrix)
    rows = [list(row) + [0] * (width - len(row)) for row in matrix]
    if servers is None:
        servers = list(range(width))

    bucketed = width > max_columns
    if bucketed:
        rows = [_bucket_columns(row, max_columns) for row in rows]
        width = max_columns

    peak = max(max(row) for row in rows)
    if peak == 0:
        return "(empty trace: no deliveries recorded)"

    def glyph(value: int) -> str:
        if value == 0:
            return GLYPHS[0]
        if value == peak:
            return GLYPHS[-1]
        # Nonzero values always render visibly (at least ".").
        index = 1 + int((len(GLYPHS) - 2) * value / peak)
        return GLYPHS[min(index, len(GLYPHS) - 2)]

    round_label_width = max(5, len(str(len(rows) - 1)))
    max_label_width = max(3, len(str(peak)))
    header = (
        f"{'round':>{round_label_width}} "
        + ("servers" if bucketed else f"servers {servers[0]}..{servers[-1]}").ljust(width)
        + f" {'max':>{max_label_width}}"
    )
    lines = [header, f"{'':>{round_label_width}} " + "-" * width]
    for round_index, row in enumerate(rows):
        cells = "".join(glyph(value) for value in row)
        lines.append(
            f"{round_index:>{round_label_width}} {cells} {max(row):>{max_label_width}}"
        )
    legend = f"scale: ' '=0, '.'≈>0 … '@'={peak} (= max cell)"
    if bucketed:
        legend += f"; {len(servers)} servers bucketed into {width} columns (max per bucket)"
    lines.append(legend)
    return "\n".join(lines)
