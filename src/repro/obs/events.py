"""Trace events and sinks for the simulated cluster.

Every data-moving operation on the cluster — ``exchange``, ``broadcast``,
``gather``, ``transfer``, and each ``run_parallel`` wave — can emit one
:class:`TraceEvent` describing *who received how much, when, and under which
phase*.  Events flow through a :class:`Tracer` into pluggable sinks:

* :class:`RingBufferSink` — last ``capacity`` events in memory;
* :class:`JsonlSink` — one JSON object per line, streamed to a file;
* :class:`CallbackSink` — hand each event to a function (dashboards, tests).

Tracing is opt-in: a cluster built without a tracer (the default) pays only
a single attribute check per operation, so the metered load ``L`` and all
benchmark numbers are untouched.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Tuple, Union

__all__ = [
    "TraceEvent",
    "Tracer",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "CallbackSink",
    "event_to_dict",
    "event_from_dict",
    "LOAD_OPS",
    "FAULT_OPS",
    "PLAN_OP",
    "POOL_OP",
    "MAINTENANCE_OP",
    "pool_events",
]

#: Operations whose ``received`` counts are charged against the load meter.
LOAD_OPS = frozenset({"exchange", "broadcast", "gather", "transfer"})

#: Fault-injection lifecycle events (:mod:`repro.mpc.faults`): ``fault``
#: marks an injected failure firing, ``recovery`` its repair (retry /
#: replay / stall — the charged overhead rides in ``detail``), and
#: ``checkpoint`` the per-round state snapshot.  None of them carry
#: load-bearing ``received`` counts, so trace aggregation of the base ``L``
#: is unaffected by chaos runs.
FAULT_OPS = frozenset({"fault", "recovery", "checkpoint"})

#: Planner header event (:mod:`repro.planner`): the executor emits one
#: ``plan`` event (round ``-1``, no servers, the plan summary in
#: ``detail``) at the start of an ``algorithm="cost"`` run, recording *why*
#: the traced algorithm was chosen.  Like :data:`FAULT_OPS` it is outside
#: :data:`LOAD_OPS`, so trace-rebuilt aggregates ignore it.
PLAN_OP = "plan"

#: Worker-pool dispatch event (:mod:`repro.mpc.pool`): one ``pool-wave``
#: event per dispatched wave, rendered *after the fact* from the pool's
#: ``dispatch_log`` by :func:`pool_events`.  These events are never
#: emitted into a cluster's tracer — the process mode's contract is that
#: trace streams are bit-identical to sequential execution, so
#: worker attribution lives in this out-of-band stream (round ``-1``,
#: outside :data:`LOAD_OPS`, like :data:`PLAN_OP`).
POOL_OP = "pool-wave"

#: Incremental-view-maintenance summary event (:mod:`repro.ivm`): a
#: :class:`~repro.ivm.MaterializedView` with a traced config emits one
#: ``maintenance`` event per applied delta batch (round ``-1``, no
#: servers, the :class:`~repro.ivm.DeltaResult` summary in ``detail``)
#: after the batch's propagation runs — which themselves stream ordinary
#: cluster events through the same tracer.  Outside :data:`LOAD_OPS`,
#: like :data:`PLAN_OP`, so trace-rebuilt aggregates ignore it.
MAINTENANCE_OP = "maintenance"


def pool_events(pool: Any, *, scope: str = "") -> List["TraceEvent"]:
    """Render a worker pool's ``dispatch_log`` as worker-attributed events.

    Each entry of :attr:`repro.mpc.pool.WorkerPool.dispatch_log` becomes
    one :data:`POOL_OP` event: ``servers`` are the *worker indices* that
    ran calls in the wave (not cluster server ids), ``received[i]`` is the
    number of items worker ``servers[i]`` processed, and ``detail`` carries
    the wave label, kernel name, and call count.  Feed the result to any
    :class:`TraceSink` for dashboards or drop it into a JSONL file next to
    the cluster trace — by construction it never interleaves with (or
    perturbs) the bit-identical cluster trace stream.
    """
    events: List[TraceEvent] = []
    for entry in getattr(pool, "dispatch_log", ()):
        per_worker: Dict[int, int] = {}
        for worker, items in zip(entry.get("workers", ()), entry.get("items", ())):
            per_worker[worker] = per_worker.get(worker, 0) + items
        workers = tuple(sorted(per_worker))
        events.append(
            TraceEvent(
                op=POOL_OP,
                round=-1,
                servers=workers,
                received=tuple(per_worker[w] for w in workers),
                scope=scope,
                detail={
                    "wave": entry.get("wave", ""),
                    "kernel": entry.get("kernel", ""),
                    "calls": entry.get("calls", 0),
                },
            )
        )
    return events


@dataclass(frozen=True)
class TraceEvent:
    """One structured observation of the simulated cluster.

    ``servers`` are *global* server ids of the emitting view; ``received[i]``
    is the number of items ``servers[i]`` received in this operation (empty
    for non-delivering ops such as ``parallel-wave``).  ``phase`` is the open
    phase-label path, outermost first.  ``algorithm`` is the label set by the
    executor (which algorithm ran); ``scope`` names the workload/instance
    when several runs share one trace file.
    """

    op: str
    round: int
    servers: Tuple[int, ...]
    received: Tuple[int, ...] = ()
    phase: Tuple[str, ...] = ()
    algorithm: str = ""
    scope: str = ""
    detail: Optional[Dict[str, Any]] = None

    @property
    def total(self) -> int:
        """Items delivered by this event."""
        return sum(self.received)

    @property
    def max_received(self) -> int:
        """Largest single-server delivery of this event."""
        return max(self.received) if self.received else 0


def event_to_dict(event: TraceEvent) -> Dict[str, Any]:
    """JSON-serializable dict form of ``event`` (the JSONL schema)."""
    record: Dict[str, Any] = {
        "op": event.op,
        "round": event.round,
        "servers": list(event.servers),
        "received": list(event.received),
    }
    if event.phase:
        record["phase"] = list(event.phase)
    if event.algorithm:
        record["algorithm"] = event.algorithm
    if event.scope:
        record["scope"] = event.scope
    if event.detail is not None:
        record["detail"] = event.detail
    return record


def event_from_dict(record: Dict[str, Any]) -> TraceEvent:
    """Inverse of :func:`event_to_dict`."""
    return TraceEvent(
        op=record["op"],
        round=int(record["round"]),
        servers=tuple(record["servers"]),
        received=tuple(record.get("received", ())),
        phase=tuple(record.get("phase", ())),
        algorithm=record.get("algorithm", ""),
        scope=record.get("scope", ""),
        detail=record.get("detail"),
    )


class TraceSink:
    """Sink interface: receives every emitted event; ``close`` is optional."""

    def write(self, event: TraceEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources; safe to call more than once."""


class RingBufferSink(TraceSink):
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._buffer: "deque[TraceEvent]" = deque(maxlen=capacity)

    def write(self, event: TraceEvent) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonlSink(TraceSink):
    """Stream events to a file as JSON Lines (one event object per line).

    The stream is flushed every ``flush_every`` events and again on
    ``close``/``__exit__``, so a crashed run loses at most the last
    ``flush_every - 1`` events rather than everything buffered.
    """

    def __init__(self, target: Union[str, IO[str]], flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError("JsonlSink needs flush_every >= 1")
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._flush_every = flush_every
        self._since_flush = 0
        self._closed = False

    def write(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event_to_dict(event)) + "\n")
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._handle.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class CallbackSink(TraceSink):
    """Invoke ``callback(event)`` for every event (live dashboards, tests)."""

    def __init__(self, callback: Callable[[TraceEvent], None]) -> None:
        self._callback = callback

    def write(self, event: TraceEvent) -> None:
        self._callback(event)


class Tracer:
    """Fans emitted events out to sinks; attach via ``MPCCluster(tracer=...)``.

    ``label`` is stamped on every event as ``TraceEvent.algorithm`` (the
    executor sets it to the algorithm it dispatched); ``scope`` names the
    workload when several runs share a sink.  A tracer with no sinks is
    inactive — the cluster skips event construction entirely.
    """

    def __init__(self, sinks: Iterable[TraceSink] = (), label: str = "",
                 scope: str = "") -> None:
        self.sinks = list(sinks)
        self.label = label
        self.scope = scope
        self._closed = False

    @property
    def active(self) -> bool:
        return bool(self.sinks)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self.sinks.append(sink)
        return sink

    def emit(
        self,
        op: str,
        round_index: int,
        servers: Tuple[int, ...],
        received: Tuple[int, ...] = (),
        phase: Tuple[str, ...] = (),
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Build one event and hand it to every sink."""
        if not self.sinks:
            return
        event = TraceEvent(
            op=op,
            round=round_index,
            servers=servers,
            received=received,
            phase=phase,
            algorithm=self.label,
            scope=self.scope,
            detail=detail,
        )
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Close every sink (flushes file-backed ones); idempotent."""
        if self._closed:
            return
        self._closed = True
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
