"""Hierarchical wall-clock span profiler for the simulated cluster.

The paper's cost model is one scalar per run — the load ``L`` — and the
tracer already attributes *that* to phases and operations.  What nothing in
the repo could answer before this module is where the **wall-clock** goes:
``BENCH_kernels.json`` shows individual kernels 3.5–23× faster yet
end-to-end matmul only 1.04–1.12×, so the time must be hiding between tuple
materialization, exchange bookkeeping, metering, and the kernels
themselves.  The :class:`Profiler` records exactly that attribution, as a
tree of *spans* aligned with the structures the repo already has:

* ``phase`` spans — one per :meth:`LoadTracker.phase` label, nested the way
  the algorithm opened them;
* ``op`` spans — one per cluster operation (``exchange`` / ``broadcast`` /
  ``gather`` / ``transfer`` / ``parallel-wave``), carrying the number of
  items the operation delivered and the cluster's backend label;
* ``kernel`` spans — one per vectorized kernel call in
  :mod:`repro.backends.kernels`;
* ``step`` spans — the executor's coarse stages (``load`` / ``execute`` /
  ``finalize`` / ``collect``), which is where tuple materialization shows;
* a ``run`` root span per executed query, labelled with the dispatched
  algorithm.

Profiling is strictly opt-in and inert by default: a cluster built without
a profiler (the default) pays a single ``None`` check per operation, so
answers, :class:`CostReport`\\ s, traces, and every committed JSON artifact
are bit-identical to a profiler-free build — the same invariant the tracer
and the fault injector already honour.

The clock is injectable (any zero-argument callable returning seconds) so
tests drive the profiler deterministically; the default is
:func:`time.perf_counter`.

Exports:

* :meth:`Profiler.hotspots` — aggregated self/cumulative seconds per
  phase-path × op × backend (:meth:`Profiler.render_hotspots` for a text
  table);
* :meth:`Profiler.to_speedscope` — `speedscope <https://speedscope.app>`_
  evented-profile JSON (drop the file on the site for a flamegraph);
* :meth:`Profiler.to_chrome_trace` — Chrome ``about://tracing`` /
  Perfetto JSON;
* :func:`replay_speedscope` — recompute per-frame totals from a
  speedscope document (the round-trip oracle used by the tests and the
  regression tooling).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, IO, List, Optional, Tuple, Union

__all__ = [
    "Profiler",
    "SpanNode",
    "HotspotRow",
    "active_profiler",
    "activate",
    "replay_speedscope",
    "write_json",
]

#: Schema URL stamped on every exported speedscope document.
SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


class SpanNode:
    """One node of the aggregated span tree.

    Children are keyed by ``(kind, label, backend)``; repeated entries to
    the same child accumulate ``calls`` / ``wall`` / ``items`` instead of
    growing the tree, so the tree stays bounded by the code's span
    structure, not the run length.
    """

    __slots__ = ("label", "kind", "backend", "calls", "wall", "items", "children")

    def __init__(self, label: str, kind: str, backend: str = "") -> None:
        self.label = label
        self.kind = kind
        self.backend = backend
        self.calls = 0
        self.wall = 0.0
        self.items = 0
        self.children: Dict[Tuple[str, str, str], "SpanNode"] = {}

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.kind, self.label, self.backend)

    @property
    def self_wall(self) -> float:
        """Wall seconds spent in this span outside any child span."""
        return max(0.0, self.wall - sum(c.wall for c in self.children.values()))

    def walk(self, depth: int = 0):
        """Yield ``(node, depth)`` pairs, pre-order, insertion order."""
        yield self, depth
        for child in self.children.values():
            yield from child.walk(depth + 1)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly subtree (used by ``repro profile --json``)."""
        record: Dict[str, Any] = {
            "label": self.label,
            "kind": self.kind,
            "calls": self.calls,
            "wall_s": self.wall,
            "self_s": self.self_wall,
        }
        if self.backend:
            record["backend"] = self.backend
        if self.items:
            record["items"] = self.items
        if self.children:
            record["children"] = [c.to_dict() for c in self.children.values()]
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanNode({self.kind}:{self.label}, calls={self.calls}, "
                f"wall={self.wall:.6f})")


class HotspotRow:
    """One aggregated hotspot: a (phase path, op, backend) cell."""

    __slots__ = ("phase", "label", "kind", "backend", "calls", "items",
                 "self_s", "cum_s")

    def __init__(self, phase: str, label: str, kind: str, backend: str) -> None:
        self.phase = phase
        self.label = label
        self.kind = kind
        self.backend = backend
        self.calls = 0
        self.items = 0
        self.self_s = 0.0
        self.cum_s = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "op": self.label,
            "kind": self.kind,
            "backend": self.backend,
            "calls": self.calls,
            "items": self.items,
            "self_s": self.self_s,
            "cum_s": self.cum_s,
        }


class Profiler:
    """Hierarchical wall-clock profiler with an injectable monotonic clock.

    ``clock`` is any zero-argument callable returning monotonically
    non-decreasing seconds (default :func:`time.perf_counter`); tests pass
    a fake counter for deterministic output.  Spans nest strictly —
    :meth:`start`/:meth:`stop` must pair up like a stack, which the
    :meth:`span` context manager guarantees.

    Attach a profiler to a run via
    ``ExecutionConfig(profiler=...)`` (or ``MPCCluster(profiler=...)``
    directly); the executor, tracker phases, cluster operations and numpy
    kernels all record into it.  One profiler may observe several runs —
    each ``run_query`` adds its own ``run:<algorithm>`` root child, which
    is how ``repro table1 --profile`` builds one profile over four rows.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.root = SpanNode("profile", "root")
        self._stack: List[SpanNode] = [self.root]
        self._starts: List[float] = []
        self._pending_items: List[int] = []
        # Flat begin/close event log for the flamegraph exporters:
        # ("O"|"C", frame_index, timestamp).
        self._events: List[Tuple[str, int, float]] = []
        self._frames: List[Tuple[str, str, str]] = []
        self._frame_index: Dict[Tuple[str, str, str], int] = {}
        self._origin: Optional[float] = None
        self._last: float = 0.0

    # -- recording -------------------------------------------------------------

    def start(self, label: str, kind: str = "span", backend: str = "") -> None:
        """Open a span as a child of the innermost open span."""
        now = self.clock()
        if self._origin is None:
            self._origin = now
        self._last = now
        parent = self._stack[-1]
        key = (kind, label, backend)
        node = parent.children.get(key)
        if node is None:
            node = SpanNode(label, kind, backend)
            parent.children[key] = node
        self._stack.append(node)
        self._starts.append(now)
        self._pending_items.append(0)
        self._events.append(("O", self._frame(key), now))

    def stop(self, items: int = 0) -> None:
        """Close the innermost open span, crediting ``items`` moved to it."""
        if len(self._stack) <= 1:
            raise RuntimeError("Profiler.stop() without a matching start()")
        now = self.clock()
        self._last = now
        node = self._stack.pop()
        node.calls += 1
        node.wall += now - self._starts.pop()
        node.items += items + self._pending_items.pop()
        self._events.append(("C", self._frame(node.key), now))

    def add_items(self, count: int) -> None:
        """Credit ``count`` items to the innermost open span (at stop time)."""
        if self._pending_items:
            self._pending_items[-1] += count

    def span(self, label: str, kind: str = "span", backend: str = ""):
        """Context manager form of :meth:`start`/:meth:`stop`."""
        return _Span(self, label, kind, backend)

    def _frame(self, key: Tuple[str, str, str]) -> int:
        index = self._frame_index.get(key)
        if index is None:
            index = len(self._frames)
            self._frames.append(key)
            self._frame_index[key] = index
        return index

    @property
    def open_depth(self) -> int:
        """Number of currently-open spans (0 when balanced)."""
        return len(self._stack) - 1

    @property
    def total_wall(self) -> float:
        """Wall seconds covered by the root's direct children."""
        return sum(child.wall for child in self.root.children.values())

    # -- aggregation -----------------------------------------------------------

    def hotspots(self, top: Optional[int] = None) -> List[HotspotRow]:
        """Self/cumulative seconds aggregated per phase-path × op × backend.

        The *phase path* of a node is the slash-joined labels of its
        ``run``/``phase``/``step`` ancestors; a phase's own bookkeeping
        appears with ``op="·"``.  Rows are sorted by self time, descending;
        ``top`` truncates.
        """
        cells: Dict[Tuple[str, str, str, str], HotspotRow] = {}

        def visit(node: SpanNode, path: Tuple[str, ...]) -> None:
            structural = node.kind in ("run", "phase", "step")
            phase = "/".join(path) if path else "(top)"
            label = "·" if structural else node.label
            key = (phase, label, node.kind, node.backend)
            row = cells.get(key)
            if row is None:
                row = HotspotRow(phase, label, node.kind, node.backend)
                cells[key] = row
            row.calls += node.calls
            row.items += node.items
            row.self_s += node.self_wall
            row.cum_s += node.wall
            child_path = path + (node.label,) if structural else path
            for child in node.children.values():
                visit(child, child_path)

        for child in self.root.children.values():
            visit(child, ())
        rows = sorted(cells.values(), key=lambda r: (-r.self_s, r.phase, r.label))
        return rows[:top] if top is not None else rows

    def render_hotspots(self, top: int = 15) -> str:
        """The hotspot table as aligned text (``repro profile`` output)."""
        rows = self.hotspots(top)
        header = ("self_s", "cum_s", "calls", "items", "backend", "op", "phase")
        cells = [header] + [
            (f"{r.self_s:.6f}", f"{r.cum_s:.6f}", str(r.calls), str(r.items),
             r.backend or "-", r.label, r.phase)
            for r in rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
        lines = []
        for index, row in enumerate(cells):
            lines.append("  ".join(
                cell.ljust(width) if i >= 4 else cell.rjust(width)
                for i, (cell, width) in enumerate(zip(row, widths))
            ).rstrip())
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def tree(self) -> str:
        """The whole span tree as indented text (cum seconds, calls, items)."""
        lines = []
        for node, depth in self.root.walk():
            if node is self.root:
                continue
            backend = f" [{node.backend}]" if node.backend else ""
            items = f" items={node.items}" if node.items else ""
            lines.append(
                f"{'  ' * (depth - 1)}{node.kind}:{node.label}{backend} "
                f"{node.wall:.6f}s self={node.self_wall:.6f}s "
                f"calls={node.calls}{items}"
            )
        return "\n".join(lines)

    # -- exporters -------------------------------------------------------------

    def _closed_events(self) -> List[Tuple[str, int, float]]:
        """The event log, with still-open spans virtually closed at the end.

        Exporting mid-run must not mutate profiler state, so the closing
        events are appended to a copy only.
        """
        events = list(self._events)
        for node in reversed(self._stack[1:]):
            events.append(("C", self._frame(node.key), self._last))
        return events

    @staticmethod
    def _frame_name(key: Tuple[str, str, str]) -> str:
        kind, label, backend = key
        name = f"{kind}:{label}"
        if backend:
            name += f" [{backend}]"
        return name

    def to_speedscope(self, name: str = "repro profile") -> Dict[str, Any]:
        """An evented speedscope document of the recorded spans.

        Timestamps are rebased so the first event sits at 0.0 seconds,
        which keeps documents from a fake clock byte-stable.
        """
        origin = self._origin or 0.0
        events = [
            {"type": kind, "frame": frame, "at": at - origin}
            for kind, frame, at in self._closed_events()
        ]
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "activeProfileIndex": 0,
            "exporter": "repro.obs.profile",
            "shared": {
                "frames": [{"name": self._frame_name(k)} for k in self._frames]
            },
            "profiles": [{
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": (self._last - origin) if self._events else 0.0,
                "events": events,
            }],
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """A Chrome ``about://tracing`` / Perfetto trace of the spans.

        Duration events (``ph`` = ``B``/``E``) on one pid/tid, microsecond
        timestamps rebased to 0.
        """
        origin = self._origin or 0.0
        trace_events = []
        for kind, frame, at in self._closed_events():
            key = self._frames[frame]
            event: Dict[str, Any] = {
                "name": self._frame_name(key),
                "cat": key[0],
                "ph": "B" if kind == "O" else "E",
                "ts": (at - origin) * 1e6,
                "pid": 1,
                "tid": 1,
            }
            trace_events.append(event)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


class _Span:
    """Context manager produced by :meth:`Profiler.span`."""

    __slots__ = ("_profiler", "_label", "_kind", "_backend")

    def __init__(self, profiler: Profiler, label: str, kind: str,
                 backend: str) -> None:
        self._profiler = profiler
        self._label = label
        self._kind = kind
        self._backend = backend

    def __enter__(self) -> Profiler:
        self._profiler.start(self._label, self._kind, self._backend)
        return self._profiler

    def __exit__(self, *_exc) -> bool:
        self._profiler.stop()
        return False


# -- the kernel hook ----------------------------------------------------------
#
# Vectorized kernels (repro.backends.kernels) receive bare arrays, not a
# view, so they cannot reach a cluster's profiler through their arguments.
# The executor instead *activates* the run's profiler for the duration of
# the run; the kernels check this module attribute — one global load and
# one None check when profiling is off.

_ACTIVE: Optional[Profiler] = None


def active_profiler() -> Optional[Profiler]:
    """The profiler kernel calls record into, or None (profiling off)."""
    return _ACTIVE


def activate(profiler: Optional[Profiler]) -> Optional[Profiler]:
    """Install ``profiler`` as the kernel-visible profiler.

    Returns the previously active one so callers can restore it in a
    ``finally`` block (runs may nest, e.g. validate-mode oracles).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    return previous


# -- speedscope round-trip -----------------------------------------------------

def replay_speedscope(document: Dict[str, Any]) -> Dict[str, float]:
    """Recompute cumulative seconds per frame from a speedscope document.

    Replays the evented profile with a stack, summing each frame's open →
    close intervals *excluding* nested re-entries of the same frame (i.e.
    the same cumulative-seconds definition as :class:`SpanNode.wall` for
    non-recursive span structures).  Used as the exporter's round-trip
    oracle: totals must match the profiler's own aggregates exactly.
    """
    profile = document["profiles"][0]
    if profile["type"] != "evented":
        raise ValueError(f"cannot replay profile type {profile['type']!r}")
    frames = [frame["name"] for frame in document["shared"]["frames"]]
    totals = {name: 0.0 for name in frames}
    stack: List[Tuple[int, float]] = []
    for event in profile["events"]:
        if event["type"] == "O":
            stack.append((event["frame"], event["at"]))
        elif event["type"] == "C":
            frame, opened = stack.pop()
            if frame != event["frame"]:
                raise ValueError("unbalanced speedscope events")
            totals[frames[frame]] += event["at"] - opened
        else:  # pragma: no cover - schema guard
            raise ValueError(f"unknown event type {event['type']!r}")
    if stack:
        raise ValueError("speedscope document left spans open")
    return totals


def write_json(document: Dict[str, Any], target: Union[str, IO[str]]) -> None:
    """Write an exported document to a path or handle (newline-terminated)."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=1)
            handle.write("\n")
    else:
        json.dump(document, target, indent=1)
        target.write("\n")
