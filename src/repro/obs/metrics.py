"""Load-skew metrics over per-round × per-server load matrices.

The paper's cost metric is a single scalar — ``L = max_{round, server}``
items received — but *why* an algorithm hits a given ``L`` lives in the full
matrix: which round peaks, how unevenly that round's load is spread, and
which servers are hot.  This module turns a load matrix (rows = rounds,
columns = servers) into those answers:

* :func:`skew_stats` — max / mean / p95 / imbalance (max÷mean) / Gini of one
  load vector;
* :func:`per_round_stats` — one :class:`SkewStats` per round;
* :func:`per_server_totals`, :func:`round_maxima` — marginal views;
* :func:`load_matrix_from_tracker` / :func:`load_matrix_from_events` —
  build the matrix from a live :class:`~repro.mpc.stats.LoadTracker` or a
  recorded trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .events import LOAD_OPS, TraceEvent

__all__ = [
    "SkewStats",
    "skew_stats",
    "per_round_stats",
    "per_server_totals",
    "round_maxima",
    "gini",
    "percentile",
    "load_matrix_from_tracker",
    "load_matrix_from_events",
]


@dataclass(frozen=True)
class SkewStats:
    """Distributional summary of one load vector (typically one round)."""

    #: Number of servers measured.
    n: int
    #: Sum of the vector (items delivered).
    total: int
    #: Largest entry — one round's contribution to the paper's ``L``.
    max: int
    #: Arithmetic mean.
    mean: float
    #: 95th percentile (nearest-rank).
    p95: int
    #: ``max / mean`` — 1.0 means perfectly balanced; 0.0 for an empty round.
    imbalance: float
    #: Gini coefficient in [0, 1]; 0 = perfectly even, →1 = one hot server.
    gini: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "total": self.total,
            "max": self.max,
            "mean": self.mean,
            "p95": self.p95,
            "imbalance": self.imbalance,
            "gini": self.gini,
        }


def percentile(values: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100])."""
    if not values:
        return 0
    if not 0 <= q <= 100:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def gini(values: Sequence[int]) -> float:
    """Gini coefficient of a non-negative vector (0 = even, →1 = concentrated)."""
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    # Σ_i (2i - n - 1) x_(i)  over the sorted vector — O(n log n).
    ordered = sorted(values)
    weighted = sum((2 * (i + 1) - n - 1) * x for i, x in enumerate(ordered))
    return weighted / (n * total)


def skew_stats(loads: Sequence[int]) -> SkewStats:
    """Summarize one load vector (e.g. one round's per-server receives)."""
    n = len(loads)
    total = sum(loads)
    peak = max(loads) if loads else 0
    mean = total / n if n else 0.0
    return SkewStats(
        n=n,
        total=total,
        max=peak,
        mean=mean,
        p95=percentile(loads, 95),
        imbalance=(peak / mean) if mean else 0.0,
        gini=gini(loads),
    )


def per_round_stats(matrix: Sequence[Sequence[int]]) -> List[SkewStats]:
    """One :class:`SkewStats` per row (round) of the load matrix."""
    return [skew_stats(list(row)) for row in matrix]


def per_server_totals(matrix: Sequence[Sequence[int]]) -> List[int]:
    """Column sums: total items each server received across all rounds."""
    if not matrix:
        return []
    width = max(len(row) for row in matrix)
    totals = [0] * width
    for row in matrix:
        for index, value in enumerate(row):
            totals[index] += value
    return totals


def round_maxima(matrix: Sequence[Sequence[int]]) -> List[int]:
    """Row maxima: each round's hottest server (max over rows = the ``L``)."""
    return [max(row) if row else 0 for row in matrix]


def load_matrix_from_tracker(
    tracker, servers: Optional[Sequence[int]] = None
) -> Tuple[List[List[int]], List[int]]:
    """The (rounds × servers) matrix a :class:`LoadTracker` accumulated.

    Returns ``(matrix, servers)``; ``servers[j]`` is the global id of
    column ``j``.  When ``servers`` is not given, the columns are the
    servers that ever received anything, in id order.
    """
    cells = tracker.load_cells()
    if servers is None:
        seen = sorted({s for row in cells.values() for s in row})
        servers = seen
    column = {server: j for j, server in enumerate(servers)}
    rounds = tracker.rounds
    matrix = [[0] * len(servers) for _ in range(rounds)]
    for round_index, row in cells.items():
        for server, count in row.items():
            if server in column:
                matrix[round_index][column[server]] += count
    return matrix, list(servers)


def load_matrix_from_events(
    events: Iterable[TraceEvent],
) -> Tuple[List[List[int]], List[int]]:
    """Rebuild the (rounds × servers) load matrix from a recorded trace.

    Only load-bearing ops (:data:`~repro.obs.events.LOAD_OPS`) contribute;
    equals the tracker's own matrix when the trace captured the whole run.
    """
    cells: Dict[Tuple[int, int], int] = {}
    max_round = -1
    server_set = set()
    for event in events:
        if event.op not in LOAD_OPS:
            continue
        if event.round > max_round:
            max_round = event.round
        for server, count in zip(event.servers, event.received):
            server_set.add(server)
            cells[(event.round, server)] = cells.get((event.round, server), 0) + count
    servers = sorted(server_set)
    column = {server: j for j, server in enumerate(servers)}
    matrix = [[0] * len(servers) for _ in range(max_round + 1)]
    for (round_index, server), count in cells.items():
        matrix[round_index][column[server]] = count
    return matrix, servers
