"""Observability for the simulated MPC cluster.

The paper's evaluation is one number — the load ``L`` — but diagnosing an
algorithm needs the whole picture: which round, which server, which phase.
This package provides it without perturbing the metered costs:

* :mod:`repro.obs.events` — :class:`TraceEvent` stream from every cluster
  operation, through a :class:`Tracer` into ring-buffer / JSONL / callback
  sinks (no-op when no tracer is attached);
* :mod:`repro.obs.metrics` — per-round load vectors and skew statistics
  (max/mean imbalance, p95, Gini);
* :mod:`repro.obs.heatmap` — ASCII round × server load heatmaps;
* :mod:`repro.obs.trace_io` — JSONL round-trip and cost reconstruction;
* :mod:`repro.obs.profile` — hierarchical wall-clock span
  :class:`Profiler` (injectable clock, hotspot tables, speedscope /
  Chrome-trace flamegraph exports; no-op when no profiler is attached);
* :mod:`repro.obs.registry` — metrics registry (counters, gauges,
  histograms) with Prometheus text exposition, fed from the trace stream
  and the profiler.

See docs/observability.md for the event schema and a reading guide.
"""

from .events import (
    CallbackSink,
    FAULT_OPS,
    JsonlSink,
    LOAD_OPS,
    MAINTENANCE_OP,
    PLAN_OP,
    POOL_OP,
    RingBufferSink,
    TraceEvent,
    TraceSink,
    Tracer,
    event_from_dict,
    event_to_dict,
    pool_events,
)
from .heatmap import render_heatmap
from .metrics import (
    SkewStats,
    gini,
    load_matrix_from_events,
    load_matrix_from_tracker,
    per_round_stats,
    per_server_totals,
    percentile,
    round_maxima,
    skew_stats,
)
from .profile import (
    HotspotRow,
    Profiler,
    SpanNode,
    active_profiler,
    replay_speedscope,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    observe_profile,
    observe_report,
)
from .trace_io import (
    iter_trace,
    phase_loads_from_events,
    read_trace,
    report_from_trace,
    trace_aggregates,
)

__all__ = [
    "Profiler",
    "SpanNode",
    "HotspotRow",
    "active_profiler",
    "replay_speedscope",
    "MetricsRegistry",
    "MetricsSink",
    "Counter",
    "Gauge",
    "Histogram",
    "observe_profile",
    "observe_report",
    "TraceEvent",
    "Tracer",
    "TraceSink",
    "RingBufferSink",
    "JsonlSink",
    "CallbackSink",
    "LOAD_OPS",
    "FAULT_OPS",
    "PLAN_OP",
    "POOL_OP",
    "MAINTENANCE_OP",
    "pool_events",
    "event_to_dict",
    "event_from_dict",
    "SkewStats",
    "skew_stats",
    "per_round_stats",
    "per_server_totals",
    "round_maxima",
    "percentile",
    "gini",
    "load_matrix_from_tracker",
    "load_matrix_from_events",
    "render_heatmap",
    "read_trace",
    "iter_trace",
    "trace_aggregates",
    "phase_loads_from_events",
    "report_from_trace",
]
