"""Metrics registry: counters, gauges, histograms, Prometheus exposition.

The planned query service needs a ``/metrics`` endpoint; this module is
the plumbing behind it, kept dependency-free (no ``prometheus_client``).
A :class:`MetricsRegistry` owns named metrics; each metric tracks one
value per label combination, and :meth:`MetricsRegistry.render` emits the
whole registry in the Prometheus text exposition format (version 0.0.4),
deterministically ordered so output is byte-stable for a fixed state.

Three feeders connect the registry to the observability stream:

* :class:`MetricsSink` — a :class:`~repro.obs.events.TraceSink` that folds
  every :class:`TraceEvent` into event/item counters and a per-delivery
  load histogram (attach it to a :class:`Tracer` like any other sink);
* :func:`observe_profile` — loads a :class:`~repro.obs.profile.Profiler`'s
  hotspot aggregates into span seconds/calls/items counters;
* :func:`observe_report` — snapshots a :class:`CostReport` into gauges.

>>> registry = MetricsRegistry()
>>> tracer = Tracer([MetricsSink(registry)])
>>> # ... run queries with the tracer attached ...
>>> print(registry.render())          # ready for a /metrics endpoint
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .events import LOAD_OPS, TraceEvent, TraceSink

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "DEFAULT_LOAD_BUCKETS",
    "observe_profile",
    "observe_report",
]

#: Default histogram buckets for per-event delivered-item counts: powers of
#: four cover everything from single-tuple control-ish deliveries to the
#: broadcast of a whole relation.
DEFAULT_LOAD_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, float("inf"))

_LabelValues = Tuple[str, ...]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(names: Sequence[str], values: _LabelValues,
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(name, value) for name, value in zip(names, values)] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + inner + "}"


class _Metric:
    """Shared bookkeeping: name, help text, declared label names."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        # One lock per metric: cheap, and it makes every read-modify-write
        # (inc/observe) safe under the query service's handler threads.
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> _LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def header(self) -> List[str]:
        return [
            f"# HELP {self.name} {_escape(self.help)}",
            f"# TYPE {self.name} {self.type_name}",
        ]

    def samples(self) -> List[str]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing value per label combination."""

    type_name = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[_LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[str]:
        return [
            f"{self.name}{_format_labels(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]


class Gauge(_Metric):
    """A value that can go up and down (last-set wins)."""

    type_name = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._values: Dict[_LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[str]:
        return [
            f"{self.name}{_format_labels(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus ``le`` convention)."""

    type_name = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LOAD_BUCKETS) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.buckets = bounds
        self._counts: Dict[_LabelValues, List[int]] = {}
        self._sums: Dict[_LabelValues, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.buckets)
                self._counts[key] = counts
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
                    break
            self._sums[key] = self._sums.get(key, 0.0) + value

    def count(self, **labels: str) -> int:
        return sum(self._counts.get(self._key(labels), ()))

    def sum(self, **labels: str) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def samples(self) -> List[str]:
        lines: List[str] = []
        for key in sorted(self._counts):
            cumulative = 0
            for bound, count in zip(self.buckets, self._counts[key]):
                cumulative += count
                labels = _format_labels(
                    self.labelnames, key, (("le", _format_value(bound)),)
                )
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            plain = _format_labels(self.labelnames, key)
            lines.append(
                f"{self.name}_sum{plain} {_format_value(self._sums[key])}"
            )
            lines.append(f"{self.name}_count{plain} {cumulative}")
        return lines


class MetricsRegistry:
    """A named collection of metrics with Prometheus text rendering.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling them
    twice with the same name returns the same metric (and raises if the
    existing metric has a different type or label set), which lets several
    feeders share one registry safely.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help_text: str,
                  labelnames: Sequence[str], **kwargs: Any):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        f"type or label set"
                    )
                return existing
            metric = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LOAD_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help_text, labelnames,
                              buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format 0.0.4.

        Metrics are sorted by name and label values, so the output is
        byte-stable for a fixed registry state — the property the tests
        and any scrape-diffing tooling rely on.
        """
        blocks: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            blocks.extend(metric.header())
            blocks.extend(metric.samples())
        return "\n".join(blocks) + ("\n" if blocks else "")


class MetricsSink(TraceSink):
    """A trace sink folding every event into a :class:`MetricsRegistry`.

    Maintains:

    * ``repro_trace_events_total{op}`` — events seen per operation;
    * ``repro_items_delivered_total{op}`` — items delivered by load-bearing
      operations;
    * ``repro_delivery_max_received{op}`` — histogram of each load-bearing
      event's largest single-server delivery (the per-event contribution
      to the paper's ``L``);
    * ``repro_rounds_observed`` — gauge of the highest round index seen
      (plus one), i.e. the traced round count.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._events = registry.counter(
            "repro_trace_events_total",
            "Trace events observed, by operation.",
            labelnames=("op",),
        )
        self._items = registry.counter(
            "repro_items_delivered_total",
            "Items delivered by load-bearing cluster operations.",
            labelnames=("op",),
        )
        self._max_received = registry.histogram(
            "repro_delivery_max_received",
            "Largest single-server delivery per load-bearing event.",
            labelnames=("op",),
        )
        self._rounds = registry.gauge(
            "repro_rounds_observed",
            "Rounds covered by the trace stream (max round index + 1).",
        )

    def write(self, event: TraceEvent) -> None:
        self._events.inc(op=event.op)
        if event.op in LOAD_OPS:
            self._items.inc(event.total, op=event.op)
            self._max_received.observe(event.max_received, op=event.op)
            if event.round >= 0:
                current = self._rounds.value()
                if event.round + 1 > current:
                    self._rounds.set(event.round + 1)


def observe_profile(registry: MetricsRegistry, profiler: Any) -> None:
    """Fold a profiler's hotspot aggregates into span counters.

    Creates/updates ``repro_span_seconds_total`` / ``repro_span_calls_total``
    / ``repro_span_items_total``, labelled by ``(phase, op, kind, backend)``
    exactly like :meth:`Profiler.hotspots` rows.  Call once per finished
    run; repeated calls accumulate (counters only go up).
    """
    seconds = registry.counter(
        "repro_span_seconds_total",
        "Self wall-clock seconds per profiled span cell.",
        labelnames=("phase", "op", "kind", "backend"),
    )
    calls = registry.counter(
        "repro_span_calls_total",
        "Span entries per profiled span cell.",
        labelnames=("phase", "op", "kind", "backend"),
    )
    items = registry.counter(
        "repro_span_items_total",
        "Items moved per profiled span cell.",
        labelnames=("phase", "op", "kind", "backend"),
    )
    for row in profiler.hotspots():
        labels = dict(phase=row.phase, op=row.label, kind=row.kind,
                      backend=row.backend or "-")
        seconds.inc(row.self_s, **labels)
        calls.inc(row.calls, **labels)
        items.inc(row.items, **labels)


def observe_report(registry: MetricsRegistry, report: Any,
                   scope: str = "") -> None:
    """Snapshot a :class:`CostReport` into per-scope gauges.

    ``scope`` labels the run (workload name, instance digest, …) so a
    service can expose the latest cost of each registered query.
    """
    fields: Iterable[Tuple[str, str, int]] = (
        ("repro_last_max_load", "Measured load L of the last run.",
         report.max_load),
        ("repro_last_total_communication",
         "Total items shipped by the last run.", report.total_communication),
        ("repro_last_rounds", "Rounds used by the last run.", report.rounds),
        ("repro_last_elementary_products",
         "Semiring products performed by the last run.",
         report.elementary_products),
    )
    for name, help_text, value in fields:
        registry.gauge(name, help_text, labelnames=("scope",)).set(
            value, scope=scope or "-"
        )
