"""JSONL trace persistence and reconstruction.

A trace written by :class:`~repro.obs.events.JsonlSink` is a complete record
of a run's data movement, so the run's cost aggregates can be recomputed
from the file alone: :func:`trace_aggregates` rebuilds ``max_load`` /
``total_communication`` / ``rounds``, and :func:`report_from_trace` packages
them as a :class:`~repro.mpc.stats.CostReport` (the round-trip is asserted
in ``tests/test_obs.py`` against the live tracker).
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, Iterator, List, Tuple, Union

from ..mpc.stats import CostReport
from .events import LOAD_OPS, TraceEvent, event_from_dict

__all__ = [
    "read_trace",
    "iter_trace",
    "trace_aggregates",
    "report_from_trace",
    "phase_loads_from_events",
]


def iter_trace(source: Union[str, IO[str]]) -> Iterator[TraceEvent]:
    """Yield events from a JSONL trace file (path or open handle)."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _iter_handle(handle)
    else:
        yield from _iter_handle(source)


def _iter_handle(handle: IO[str]) -> Iterator[TraceEvent]:
    for line in handle:
        line = line.strip()
        if line:
            yield event_from_dict(json.loads(line))


def read_trace(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """All events of a JSONL trace, in file order."""
    return list(iter_trace(source))


def trace_aggregates(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Recompute the tracker's aggregates from a recorded trace.

    Accumulates load-bearing deliveries per ``(round, server)`` cell exactly
    as :meth:`LoadTracker.record_receive` does, so for a trace that captured
    the whole run: ``max_load`` = the paper's ``L``, ``total_communication``
    = all items shipped, ``rounds`` = rounds used, ``events`` = event count.
    """
    cells: Dict[Tuple[int, int], int] = {}
    max_round = -1
    count = 0
    for event in events:
        count += 1
        if event.op not in LOAD_OPS:
            continue
        if event.round > max_round:
            max_round = event.round
        for server, received in zip(event.servers, event.received):
            if received:
                key = (event.round, server)
                cells[key] = cells.get(key, 0) + received
    return {
        "max_load": max(cells.values()) if cells else 0,
        "total_communication": sum(cells.values()),
        "rounds": max_round + 1,
        "events": count,
    }


def phase_loads_from_events(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Max per-(round, server) load under each phase path, from a trace.

    Keys are slash-joined phase paths (``"matmul-wc/heavy-heavy"`` style
    labels already include their own hierarchy; nested tracker phases appear
    as ``outer//inner``).  An event under a nested phase counts toward every
    prefix of its path, mirroring the tracker's nested-phase semantics.
    """
    cells: Dict[Tuple[str, int, int], int] = {}
    for event in events:
        if event.op not in LOAD_OPS or not event.phase:
            continue
        for depth in range(1, len(event.phase) + 1):
            path = "//".join(event.phase[:depth])
            for server, received in zip(event.servers, event.received):
                if received:
                    key = (path, event.round, server)
                    cells[key] = cells.get(key, 0) + received
    loads: Dict[str, int] = {}
    for (path, _round, _server), count in cells.items():
        if count > loads.get(path, 0):
            loads[path] = count
    return loads


def report_from_trace(events: Iterable[TraceEvent]) -> CostReport:
    """A :class:`CostReport` rebuilt from a trace.

    Control traffic and ⊗-product counts are not traced (they are not data
    movement), so those fields are zero; ``phases`` holds the slash-joined
    phase paths of :func:`phase_loads_from_events` in sorted order.
    """
    events = list(events)
    aggregates = trace_aggregates(events)
    phases = tuple(sorted(phase_loads_from_events(events).items()))
    return CostReport(
        max_load=aggregates["max_load"],
        total_communication=aggregates["total_communication"],
        rounds=aggregates["rounds"],
        control_messages=0,
        elementary_products=0,
        phases=phases,
    )
