"""The library's typed error hierarchy, re-exported from one place.

Every exception the library raises on purpose derives from
:class:`ReproError`, so callers can catch one root — and the query
service (:mod:`repro.service`) can map *exception class → HTTP status*
deterministically instead of pattern-matching messages.  The leaves keep
their historical built-in bases (``ValueError``, ``RuntimeError``) so
pre-hierarchy ``except ValueError`` call sites continue to work.

The hierarchy::

    ReproError
    ├── ConfigError(ValueError)          — invalid ExecutionConfig/knobs
    ├── ApplicabilityError(ValueError)   — algorithm ∕ query shape mismatch
    ├── UnsupportedDeltaError(ValueError)— delta needs inverses the semiring lacks
    └── MPCError(RuntimeError)           — simulated-cluster failures
        ├── RoutingError                 — message to a server outside the view
        ├── AllocationError              — server-allocation request unsatisfiable
        ├── FaultError                   — injected-fault failures
        │   └── UnrecoverableFaultError  — fault the recovery policy cannot repair
        └── WorkerCrashError             — process-mode OS worker died

:mod:`repro.mpc.errors` re-exports the MPC branch for compatibility with
the historical import paths; new code should import from here.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "ApplicabilityError",
    "UnsupportedDeltaError",
    "MPCError",
    "RoutingError",
    "AllocationError",
    "FaultError",
    "UnrecoverableFaultError",
    "WorkerCrashError",
]


class ReproError(Exception):
    """Root of every exception the library raises deliberately."""


class ConfigError(ReproError, ValueError):
    """An invalid configuration value or combination of values.

    Raised eagerly — :class:`~repro.config.ExecutionConfig` rejects
    unknown backends, ``workers < 1``, ``p < 1``, bad ``stats_mode``
    values, and the faults + process-mode combination at *construction*
    time, so a bad config never reaches the executor.
    """


class ApplicabilityError(ReproError, ValueError):
    """An algorithm was requested on a query without the required shape.

    Also covers asking the planner for a plan when no registered
    candidate has a cost model.  Subclasses ``ValueError`` because the
    executor historically raised that.
    """


class UnsupportedDeltaError(ReproError, ValueError):
    """A delta batch needs algebraic structure the semiring does not have.

    Insert-only maintenance works over *any* commutative semiring (the
    query result is multilinear in its relations), but deletions require
    additive inverses — a ring, or at least bag-difference semantics.
    Semirings that declare a :attr:`~repro.semiring.Semiring.negate`
    callable (counting, real) accept deletions; all others raise this.
    """


class MPCError(ReproError, RuntimeError):
    """Base class for simulated-cluster failures."""


class RoutingError(MPCError):
    """A message was addressed to a server outside the executing view."""


class AllocationError(MPCError):
    """A server-allocation request could not be satisfied."""


class FaultError(MPCError):
    """Base class for injected-fault failures (see :mod:`repro.mpc.faults`).

    Carries the identifying coordinates of the fault so harnesses can
    assert *which* failure fired: ``kind`` (``crash``/``drop``/
    ``duplicate``/``straggler``), ``round`` and global ``server`` id.
    """

    def __init__(self, message: str, *, kind: str = "", round_index: int = -1,
                 server: int = -1) -> None:
        super().__init__(message)
        self.kind = kind
        self.round = round_index
        self.server = server


class UnrecoverableFaultError(FaultError):
    """An injected fault the recovery policy cannot repair.

    Raised from inside the faulted cluster operation, naming the failing
    round — the run is torn down loudly instead of silently producing a
    wrong answer.
    """


class WorkerCrashError(MPCError):
    """An OS worker of the ``"process"`` execution mode died or failed.

    Carries the identifying coordinates of the failure so harnesses can
    assert *which* dispatch fired: the ``wave`` label (one label per
    kernel-dispatch batch, e.g. ``"join-reduce:3"`` or ``"exchange:r5"``),
    the ``kernel`` name, and the pool ``worker`` index.  ``detail`` holds
    the remote traceback when the worker survived long enough to send one
    (a Python-level kernel failure); hard deaths (signal, ``os._exit``)
    leave it empty.
    """

    def __init__(self, message: str, *, wave: str = "", kernel: str = "",
                 worker: int = -1, detail: str = "") -> None:
        super().__init__(message)
        self.wave = wave
        self.kernel = kernel
        self.worker = worker
        self.detail = detail
