"""Backend resolution: which kernel implementation a run uses.

``backend`` is a three-valued knob threaded from the public entry points
(:mod:`repro.api`, :func:`repro.core.executor.run_query`, the CLI) down to
the cluster:

* ``"pytuple"`` — the reference tuple-at-a-time kernels;
* ``"numpy"`` — the columnar kernels (raises when numpy is missing);
* ``"auto"`` — ``numpy`` when numpy is importable and the instance is big
  enough for vectorization to pay (``AUTO_MIN_TUPLES``), else ``pytuple``.

The resolved name lives on :class:`~repro.mpc.cluster.MPCCluster` as
``cluster.backend``; primitives consult :func:`numpy_enabled` per view.
Fault injection always forces the tuple kernels (the injector mutates
per-server item lists in place), which keeps chaos runs on the reference
path without any per-primitive special-casing.
"""

from __future__ import annotations

from typing import Optional

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - CI images always ship numpy
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "AUTO_MIN_TUPLES",
    "BACKENDS",
    "HAS_NUMPY",
    "np",
    "columnar_enabled",
    "numpy_enabled",
    "process_enabled",
    "resolve_backend",
]

#: The legal ``backend=`` values at every public entry point.
BACKENDS = ("pytuple", "numpy", "auto", "columnar")

#: ``auto`` only picks numpy above this total input size: below it the
#: per-call array setup costs more than the loops it replaces.
AUTO_MIN_TUPLES = 256


def resolve_backend(backend: Optional[str], total_size: Optional[int] = None) -> str:
    """Map a requested backend (``None`` ⇒ ``pytuple``) to a concrete one."""
    if backend is None:
        return "pytuple"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {', '.join(BACKENDS)}"
        )
    if backend in ("numpy", "columnar") and not HAS_NUMPY:
        raise RuntimeError(
            f"backend={backend!r} requested but numpy is not installed"
        )
    if backend == "auto":
        if not HAS_NUMPY:
            return "pytuple"
        if total_size is not None and total_size < AUTO_MIN_TUPLES:
            return "pytuple"
        return "numpy"
    return backend


def numpy_enabled(view) -> bool:
    """True when primitives on ``view`` should take their vectorized path.

    Requires numpy, a cluster resolved to the numpy or columnar backend,
    and no fault injector (the injector rewrites inboxes item-at-a-time).
    """
    if not HAS_NUMPY:
        return False
    cluster = view.cluster
    return (
        getattr(cluster, "backend", "pytuple") in ("numpy", "columnar")
        and cluster.faults is None
    )


def process_enabled(view) -> bool:
    """True when kernels on ``view`` may dispatch to the OS worker pool.

    The ``"process"`` execution mode (``ExecutionConfig(workers=…)``)
    chunks the data-parallel kernels — vectorized local joins and
    ``exchange_batches`` splits — across spawned workers.  It composes
    with :func:`numpy_enabled`/:func:`columnar_enabled` (the pool only
    ever accelerates their array paths) and falls back to fully
    sequential execution whenever:

    * fault injection is active (the injector rewrites inboxes
      item-at-a-time on the tuple path);
    * a profiler is attached or activated — ``Profiler`` activation is a
      module global and kernel spans recorded inside a worker process
      would be invisible to the parent's profile (and to the
      ``MetricsRegistry`` counters fed from it), so profiled runs are
      pinned to the sequential engine rather than silently dropping
      spans (see ``docs/observability.md``);
    * the semiring has no annotation profile — opaque/unpicklable ⊕/⊗
      callables never reach a worker because only profile-vectorized
      kernels dispatch (this falls out of the ``vec``-context gates).

    Meters cannot move either way: routing, codec interning, and load
    accounting stay in the parent unconditionally.
    """
    if not HAS_NUMPY:
        return False
    cluster = view.cluster
    if getattr(cluster, "workers", 1) <= 1:
        return False
    if cluster.faults is not None or cluster.tracker.profiler is not None:
        return False
    from ..obs import profile as _profile

    return _profile._ACTIVE is None


def columnar_enabled(view) -> bool:
    """True when primitives on ``view`` may also move *arrays* end-to-end.

    The ``"columnar"`` backend is ``"numpy"`` plus array-shipping exchanges
    (:meth:`~repro.mpc.cluster.ClusterView.exchange_batches`): datasets stay
    as :class:`~repro.mpc.columnar.ColumnarData` batches across rounds and
    only decode at boundaries that still need tuples.  Routing decisions,
    delivery order, and per-server counts are identical to the item path,
    so meters and traces are bit-identical by construction.
    """
    if not HAS_NUMPY:
        return False
    cluster = view.cluster
    return (
        getattr(cluster, "backend", "pytuple") == "columnar"
        and cluster.faults is None
    )
