"""Vectorized per-server kernels with *first-occurrence* output order.

Every kernel here replaces a Python dict/loop kernel of the tuple backend
and is required to reproduce its output **order**, not just its content:
downstream primitives tag items with (server, position) tiebreaks whose
values feed splitter sampling and routing, so any reordering — even of
equivalent results — would change the metered load.  The dict kernels all
emit results in key-first-occurrence order (Python dict insertion order),
which these kernels reconstruct with one stable argsort:

* :func:`group_reduce` — sort-and-segment-reduce equal to a dict ⊕-fold;
* :func:`first_occurrence_unique` — dedup equal to ``dict.fromkeys``;
* :func:`hash_join` — the exact elementary-product stream of the nested
  probe loops (outer side in arrival order, matches in arrival order);
* :func:`combine_columns` / :func:`split_codes` — pack multi-column keys
  into one int64 (mixed-radix over the codec size) and back;
* :func:`select_splitters` — regular-sampling splitter selection;
* :func:`isin_filter` — the semijoin membership filter.

All inputs are int64 code arrays from a :class:`~.columnar.ValueCodec`.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs import profile as _profile
from .dispatch import np

__all__ = [
    "combine_columns",
    "first_occurrence_unique",
    "group_index",
    "group_reduce",
    "hash_join",
    "isin_filter",
    "segment_gather",
    "select_splitters",
    "split_codes",
]

#: Packed multi-column keys must stay well inside int64.
_PACK_LIMIT = 1 << 62


def _rows(args: Tuple[Any, ...]) -> int:
    """Row count of the first array argument (the kernel's input size)."""
    return int(args[0].shape[0])


def _profiled(items_fn: Callable[[Tuple[Any, ...]], int] = _rows):
    """Record each call of the wrapped kernel as a profiler ``kernel`` span.

    The active profiler is the one the executor activated for the current
    run (:func:`repro.obs.profile.activate`); with none active — the
    default — the wrapper costs one module-attribute load and one ``None``
    check, and the kernel's behaviour is untouched.  ``items_fn`` maps the
    call's positional arguments to the item count credited to the span.
    """

    def decorate(fn):
        label = fn.__name__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            profiler = _profile._ACTIVE
            if profiler is None:
                return fn(*args, **kwargs)
            profiler.start(label, kind="kernel", backend="numpy")
            try:
                result = fn(*args, **kwargs)
            except BaseException:
                profiler.stop()
                raise
            profiler.stop(items=items_fn(args))
            return result

        return wrapper

    return decorate


@_profiled()
def group_reduce(ids: Any, values: Any, add_ufunc: Any) -> Tuple[Any, Any]:
    """⊕-fold ``values`` per id — the dict-fold kernel, vectorized.

    Returns ``(unique_ids, reduced)`` with unique ids in first-occurrence
    order, exactly the ``.items()`` order of::

        acc = {}
        for i, v in zip(ids, values):
            acc[i] = add(acc[i], v) if i in acc else v

    ``add_ufunc`` must be order-insensitive on the dtype (the profiles
    guarantee this), because segment reduction reassociates.
    """
    n = ids.shape[0]
    if n == 0:
        return ids[:0], values[:0]
    if add_ufunc is np.add and values.dtype == np.int64 and n >= 1024:
        fast = _group_sum_bincount(ids, values, n)
        if fast is not None:
            return fast
    # Quicksort beats the stable radix argsort ~4x on int64 keys, and the
    # fold tolerates intra-group permutation whenever ⊕ is bitwise
    # permutation-insensitive on the dtype — true for the int/bool
    # profiles.  Float min/max is value-insensitive but can see ±0.0
    # (equal-comparing, distinct bits), so floats keep the stable sort and
    # its exact arrival-order fold.
    stable = values.dtype.kind == "f"
    order = np.argsort(ids, kind="stable" if stable else None)
    sorted_ids = ids[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    reduced = add_ufunc.reduceat(values[order], starts)
    # First-occurrence position per group: directly under a stable sort,
    # else the minimum original position within each segment.
    firsts = order[starts] if stable else np.minimum.reduceat(order, starts)
    rank = np.argsort(firsts, kind="stable")
    return sorted_ids[starts][rank], reduced[rank]


def _group_sum_bincount(ids: Any, values: Any, n: int) -> Optional[Tuple[Any, Any]]:
    """Sort-free int64 ⊕=+ fold for dense non-negative key spaces, or None.

    ``np.bincount`` accumulates in float64, which is exact as long as every
    partial sum is an integer below 2^53 — guaranteed here by bounding
    ``n * max|value|``.  First-occurrence order is recovered without a sort
    by scattering positions in reverse (with repeated indices the last
    assignment wins, so each key keeps its smallest position)."""
    span = int(ids.max()) + 1
    if int(ids.min()) < 0 or span > 4 * n + 1024:
        return None
    bound = max(abs(int(values.max())), abs(int(values.min()))) if n else 0
    if bound * n >= 1 << 53:
        return None
    counts = np.bincount(ids, minlength=span)
    sums = np.bincount(ids, weights=values, minlength=span)
    present = np.flatnonzero(counts)
    first_pos = np.zeros(span, dtype=np.int64)
    first_pos[ids[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
    unique = present[np.argsort(first_pos[present])]
    return unique, sums[unique].astype(np.int64)


@_profiled()
def first_occurrence_unique(ids: Any) -> Any:
    """Unique ids in first-occurrence order (= ``dict.fromkeys`` order)."""
    if ids.shape[0] == 0:
        return ids[:0]
    # Non-stable sort suffices: the first occurrence of a group is the
    # minimum original position within its segment.
    order = np.argsort(ids)
    sorted_ids = ids[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    return ids[np.sort(np.minimum.reduceat(order, starts))]


def group_index(ids: Any) -> Tuple[Any, Any, Any, Any]:
    """Group rows by id: ``(order, unique_sorted, starts, counts)``.

    ``order`` is the stable permutation grouping equal ids together (arrival
    order within a group); ``unique_sorted[g]`` spans
    ``order[starts[g] : starts[g] + counts[g]]``.
    """
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    if sorted_ids.shape[0] == 0:
        empty = ids[:0]
        return order, empty, empty, empty
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    counts = np.diff(np.concatenate((starts, [sorted_ids.shape[0]])))
    return order, sorted_ids[starts], starts, counts


def segment_gather(starts: Any, counts: Any) -> Any:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` segments."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(ends - counts, counts)
        + np.repeat(starts, counts)
    )


@_profiled(lambda args: int(args[0].shape[0]) + int(args[1].shape[0]))
def hash_join(left_ids: Any, right_ids: Any, outer: str = "right") -> Tuple[Any, Any]:
    """Positions of every elementary product, in the tuple kernels' order.

    ``outer="right"`` replays ``local_join_aggregate``: for each right item
    in arrival order, all matching left items in arrival order.
    ``outer="left"`` is the mirror.  Returns ``(left_positions,
    right_positions)`` of equal length (the product count).
    """
    if outer == "right":
        build_ids, probe_ids = left_ids, right_ids
    elif outer == "left":
        build_ids, probe_ids = right_ids, left_ids
    else:  # pragma: no cover - internal misuse
        raise ValueError(f"outer must be 'left' or 'right', got {outer!r}")
    empty = np.empty(0, dtype=np.int64)
    if build_ids.shape[0] == 0 or probe_ids.shape[0] == 0:
        return empty, empty
    order, unique_sorted, starts, counts = group_index(build_ids)
    positions = np.searchsorted(unique_sorted, probe_ids)
    clipped = np.minimum(positions, unique_sorted.shape[0] - 1)
    matched = unique_sorted[clipped] == probe_ids
    probe_sel = np.flatnonzero(matched)
    if probe_sel.shape[0] == 0:
        return empty, empty
    groups = clipped[probe_sel]
    group_counts = counts[groups]
    probe_stream = np.repeat(probe_sel, group_counts)
    build_stream = order[segment_gather(starts[groups], group_counts)]
    if outer == "right":
        return build_stream, probe_stream
    return probe_stream, build_stream


@_profiled(lambda args: int(args[0][0].shape[0]) if len(args[0]) else int(args[2]))
def combine_columns(
    columns: Sequence[Any], base: int, size: int
) -> Tuple[Optional[Any], int]:
    """Pack parallel code columns into one int64 key per row (mixed radix).

    Returns ``(codes, base)``; codes is None when ``base ** len(columns)``
    would not fit (the caller falls back to tuple kernels).  Zero columns
    pack to the constant 0 (the empty tuple key).
    """
    base = max(1, base)
    if len(columns) == 0:
        return np.zeros(size, dtype=np.int64), base
    packed_span = 1
    for _ in columns:
        packed_span *= base
        if packed_span >= _PACK_LIMIT:
            return None, base
    packed = columns[0].astype(np.int64, copy=True)
    for column in columns[1:]:
        packed *= base
        packed += column
    return packed, base


@_profiled()
def split_codes(packed: Any, base: int, width: int) -> List[Any]:
    """Inverse of :func:`combine_columns`: per-column code arrays."""
    if width == 0:
        return []
    columns: List[Any] = []
    remaining = packed
    for _ in range(width - 1):
        remaining, column = np.divmod(remaining, base)
        columns.append(column)
    columns.append(remaining)
    columns.reverse()
    return columns


@_profiled()
def isin_filter(ids: Any, allowed: Any) -> Any:
    """Boolean membership mask (vectorized semijoin filter)."""
    return np.isin(ids, allowed)


@_profiled()
def select_splitters(samples: Any, p: int) -> Any:
    """The regular-sampling splitter pick over gathered (sorted) samples:
    ``samples[step::step][: p - 1]`` with ``step = max(1, len // p)``."""
    if samples.shape[0] == 0:
        return samples[:0]
    step = max(1, samples.shape[0] // p)
    return samples[step::step][: p - 1]
