"""Array batches that move through the cluster as units.

A :class:`ColumnarBatch` is the wire form of one server's slice of a
dataset under the ``"columnar"`` backend: parallel int64 code columns (one
per tuple position, codes from the cluster's shared
:class:`~.columnar.ValueCodec`) plus an optional typed annotation array.
:meth:`~repro.mpc.cluster.ClusterView.exchange_batches` splits batches by a
destination array and concatenates the fragments — never touching a Python
object per row — while the logical tuple counts (and therefore the load
meter) come from the array lengths.

Two decode layouts cover every dataset shape the primitives ship:

* ``"items"`` — ``columns[j][i]`` is the code of attribute ``j`` of row
  ``i``; rows decode to the ``(values, annotation)`` wire format.
* ``"pairs"`` — one column of interned-key codes; rows decode to
  ``(key, annotation)`` pairs (reduce-by-key partials, degree tables).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .dispatch import np

__all__ = ["ColumnarBatch"]


class ColumnarBatch:
    """One server's rows as parallel arrays.

    ``columns`` are int64 codec codes; ``annotations`` is a profile-typed
    array, or ``None`` for code-only payloads (distinct keys).  ``kind``
    selects the decode layout (``"items"`` or ``"pairs"``).
    """

    __slots__ = ("columns", "annotations", "size", "kind")

    def __init__(
        self,
        columns: Tuple[Any, ...],
        annotations: Optional[Any],
        size: int,
        kind: str = "items",
    ) -> None:
        self.columns = columns
        self.annotations = annotations
        self.size = size
        self.kind = kind

    @classmethod
    def empty(cls, width: int, annotations: bool, kind: str = "items",
              ann_dtype: Any = None) -> "ColumnarBatch":
        columns = tuple(np.empty(0, dtype=np.int64) for _ in range(width))
        ann = None
        if annotations:
            ann = np.empty(0, dtype=ann_dtype if ann_dtype is not None else np.int64)
        return cls(columns, ann, 0, kind)

    def take(self, indices: Any) -> "ColumnarBatch":
        """The rows at ``indices`` (in that order), as a new batch."""
        return ColumnarBatch(
            tuple(column[indices] for column in self.columns),
            None if self.annotations is None else self.annotations[indices],
            int(indices.shape[0]),
            self.kind,
        )

    def slice(self, start: int, stop: int) -> "ColumnarBatch":
        """Rows ``start:stop`` (contiguous, view-backed)."""
        return ColumnarBatch(
            tuple(column[start:stop] for column in self.columns),
            None if self.annotations is None else self.annotations[start:stop],
            max(0, min(stop, self.size) - start),
            self.kind,
        )

    @staticmethod
    def concat(batches: Sequence["ColumnarBatch"]) -> "ColumnarBatch":
        """Row-wise concatenation, batch order preserved (= inbox order)."""
        batches = [b for b in batches if b is not None]
        if not batches:
            raise ValueError("concat needs at least one batch")
        first = batches[0]
        if len(batches) == 1:
            return first
        columns = tuple(
            np.concatenate([b.columns[j] for b in batches])
            for j in range(len(first.columns))
        )
        if first.annotations is None:
            annotations = None
        else:
            annotations = np.concatenate([b.annotations for b in batches])
        return ColumnarBatch(
            columns, annotations, sum(b.size for b in batches), first.kind
        )

    def to_items(self, codec: Any) -> List[Any]:
        """Decode to the tuple wire format, row order preserved."""
        if self.size == 0:
            return []
        decoded = [codec.decode_many(column) for column in self.columns]
        annotations = (
            None if self.annotations is None else self.annotations.tolist()
        )
        if self.kind == "pairs":
            keys = decoded[0]
            if annotations is None:
                return [(key, None) for key in keys]
            return list(zip(keys, annotations))
        rows = list(zip(*decoded)) if decoded else [()] * self.size
        if annotations is None:
            return rows
        return list(zip(rows, annotations))

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnarBatch(width={len(self.columns)}, size={self.size}, "
                f"kind={self.kind!r})")
