"""Columnar value coding and the numeric semiring profiles.

The columnar backend never ships arrays between servers — communication
stays item-at-a-time through ``exchange`` so metering is untouched — but
*within* a server it re-represents tuple batches as arrays:

* a :class:`ValueCodec` (one per cluster) interns every attribute/key value
  into a dense ``int64`` code, and memoizes the per-salt ``stable_hash`` of
  each interned value so repartitioning reuses hashes across rounds;
* an :class:`AnnotationProfile` maps a semiring with numeric ⊕/⊗ onto a
  dtype plus ufuncs (counting → int64 +/×, boolean → bool ∨/∧, the
  tropical/max family → float64 or int64 min-max/+/×).  ``profile_of``
  recognizes the standard semirings **by identity**, so a user-built
  semiring — whose ⊕/⊗ could be anything — never silently vectorizes;
* :class:`ColumnarPartition` / :class:`ColumnarRelation` hold one server's
  (or one logical relation's) tuples as per-attribute code columns plus a
  dtype-typed annotation array.

Exactness contract: every profile's operations are bit-exact against the
scalar semiring.  Integer annotations stay in int64 ranges where +, × and
segment sums cannot overflow (``encodable`` rejects larger values, which
falls the call back to the tuple kernels); float operations are the same
IEEE754 double operations CPython performs.  ⊕-reductions are only ever
vectorized for order-insensitive ⊕ (ints, min, max, or) — the float ``+``
of the REAL semiring is order-sensitive and has no profile on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..mpc.hashing import encode_key, stable_hash_encoded
from ..semiring import Semiring
from ..semiring.standard import (
    BOOLEAN,
    COUNTING,
    MAX_MIN,
    MAX_TIMES,
    TROPICAL_MAX_PLUS,
    TROPICAL_MIN_PLUS,
)
from .dispatch import HAS_NUMPY, np

__all__ = [
    "AnnotationProfile",
    "ColumnarPartition",
    "ColumnarRelation",
    "FLOAT_MAX_PROFILE",
    "ValueCodec",
    "encode_annotations",
    "profile_of",
]

#: Annotation magnitude cap for integer profiles: with |a| < 2^20 every
#: pairwise product stays < 2^40 and any realistic segment sum (< 2^23
#: terms per server) stays far below 2^63.
_INT_LIMIT = 1 << 20
#: Floats convert int64 exactly only below 2^53.
_FLOAT_EXACT = 1 << 53


class ValueCodec:
    """Interns hashable values as dense int64 codes, with per-salt hash caches.

    One codec is shared by a whole cluster (``cluster.codec``): codes are
    stable for the lifetime of a run, so a value hashed for routing in one
    round is never re-hashed in a later round under the same salt — the
    blake2b evaluations that dominate the tuple backend's repartitioning
    cost are paid once per (value, salt).
    """

    __slots__ = ("_codes", "_values", "_encoded", "_hash_tables",
                 "_int_table", "_int_state")

    def __init__(self) -> None:
        self._codes: Dict[Any, int] = {}
        self._values: List[Any] = []
        #: code -> canonical hash-input bytes, filled lazily on first hash
        #: so a value hashed under several salts is byte-encoded only once.
        self._encoded: Dict[int, bytes] = {}
        #: salt -> (uint64 hash table, bool "known" mask), aligned to codes.
        self._hash_tables: Dict[int, Tuple[Any, Any]] = {}
        #: lazy int64 *value* table for value-ordered sorts: per code, the
        #: value itself when it is a plain bounded int (state 1), else a
        #: "not numeric" marker (state 2); state 0 = not probed yet.
        self._int_table: Any = None
        self._int_state: Any = None

    def __len__(self) -> int:
        return len(self._values)

    def encode_many(self, values: Sequence[Any]) -> Any:
        """Codes of ``values`` as an int64 array, interning new ones."""
        codes = self._codes
        try:
            # Fast path: everything already interned — a C-level map beats
            # the interning loop ~4x, and re-encoding seen values is the
            # common case after the first round.
            return np.fromiter(
                map(codes.__getitem__, values), dtype=np.int64, count=len(values)
            )
        except KeyError:
            pass
        store = self._values
        out = np.empty(len(values), dtype=np.int64)
        for position, value in enumerate(values):
            code = codes.get(value)
            if code is None:
                code = len(store)
                codes[value] = code
                store.append(value)
            out[position] = code
        return out

    def value(self, code: int) -> Any:
        return self._values[code]

    def decode_many(self, ids: Any) -> List[Any]:
        """The original (interned, identity-preserved) values of ``ids``."""
        store = self._values
        return [store[code] for code in ids.tolist()]

    def hashes(self, ids: Any, salt: int) -> Any:
        """``stable_hash(value, salt)`` of each id, as uint64 (memoized)."""
        entry = self._hash_tables.get(salt)
        size = len(self._values)
        if entry is None or entry[0].shape[0] < size:
            grown = np.zeros(size, dtype=np.uint64)
            known = np.zeros(size, dtype=bool)
            if entry is not None and entry[0].shape[0]:
                grown[: entry[0].shape[0]] = entry[0]
                known[: entry[1].shape[0]] = entry[1]
            entry = (grown, known)
            self._hash_tables[salt] = entry
        table, known = entry
        unknown = ~known[ids]
        if unknown.any():
            missing = np.unique(ids[unknown])
            store = self._values
            encoded = self._encoded
            raw: List[bytes] = []
            for code in missing.tolist():
                cached = encoded.get(code)
                if cached is None:
                    cached = encode_key(store[code])
                    encoded[code] = cached
                raw.append(cached)
            table[missing] = stable_hash_encoded(raw, salt)
            known[missing] = True
        return table[ids]

    def buckets(self, ids: Any, buckets: int, salt: int) -> Any:
        """``hash_to_bucket(value, buckets, salt)`` of each id (int64)."""
        return (self.hashes(ids, salt) % np.uint64(buckets)).astype(np.int64)

    def int_values(self, ids: Any) -> Optional[Any]:
        """The interned *values* of ``ids`` as an int64 array, or None.

        Only plain ints within ±2^62 qualify (bools and anything else make
        the caller fall back to Python comparison).  Sorting these arrays
        orders identically to sorting the original values.
        """
        size = len(self._values)
        if self._int_state is None or self._int_state.shape[0] < size:
            table = np.zeros(size, dtype=np.int64)
            state = np.zeros(size, dtype=np.int8)
            if self._int_state is not None and self._int_state.shape[0]:
                table[: self._int_table.shape[0]] = self._int_table
                state[: self._int_state.shape[0]] = self._int_state
            self._int_table, self._int_state = table, state
        table, state = self._int_table, self._int_state
        probe = state[ids] == 0
        if probe.any():
            store = self._values
            limit = 1 << 62
            for code in np.unique(ids[probe]).tolist():
                value = store[code]
                if type(value) is int and -limit < value < limit:
                    table[code] = value
                    state[code] = 1
                else:
                    state[code] = 2
        if ids.shape[0] == 0:
            return table[:0]
        if (state[ids] == 1).all():
            return table[ids]
        return None

    def units(self, ids: Any, salt: int) -> Any:
        """``hash_to_unit(value, salt)`` of each id.

        Bit-exact vs. the scalar path: uint64→float64 conversion is the
        same round-to-nearest as CPython's int→float, and dividing by 2^64
        is an exact exponent shift.
        """
        return self.hashes(ids, salt).astype(np.float64) * 2.0**-64


@dataclass(frozen=True)
class AnnotationProfile:
    """A semiring whose annotations vectorize: dtype + ⊕ ufunc + ⊗ kernel.

    ``add_ufunc`` must be order-insensitive on the profile's dtypes (sum of
    bounded ints, min, max, or) so segment reduction may reassociate;
    ``mul(a, b)`` is elementwise ⊗; ``encodable`` is the per-value guard
    deciding whether one annotation fits the dtype exactly.
    """

    name: str
    add_name: str  # "add" | "or" | "min" | "max"
    mul_name: str  # "mul" | "and" | "add" | "min"
    kind: str  # "int" | "bool" | "number"

    @property
    def add_ufunc(self):
        return _UFUNCS[self.add_name]

    def mul(self, a, b):
        return _UFUNCS[self.mul_name](a, b)

    def encodable(self, value: Any, int_limit: int = _INT_LIMIT) -> bool:
        if self.kind == "bool":
            return isinstance(value, bool)
        if self.kind == "int":
            return type(value) is int and -int_limit < value < int_limit
        # "number": int (exactly representable) or any non-NaN float (NaN
        # makes min/max order-sensitive, so it may never vectorize).
        if isinstance(value, bool):
            return False
        if isinstance(value, float):
            return value == value
        return type(value) is int and -_FLOAT_EXACT < value < _FLOAT_EXACT


if HAS_NUMPY:
    _UFUNCS = {
        "add": np.add,
        "or": np.logical_or,
        "min": np.minimum,
        "max": np.maximum,
        "mul": np.multiply,
        "and": np.logical_and,
    }
else:  # pragma: no cover - profile lookups are gated on HAS_NUMPY
    _UFUNCS = {}

_PROFILE_BY_SEMIRING: Dict[int, AnnotationProfile] = {}
if HAS_NUMPY:
    for _semiring, _profile in (
        (COUNTING, AnnotationProfile("counting", "add", "mul", "int")),
        (BOOLEAN, AnnotationProfile("boolean", "or", "and", "bool")),
        (TROPICAL_MIN_PLUS, AnnotationProfile("tropical-min-plus", "min", "add", "number")),
        (TROPICAL_MAX_PLUS, AnnotationProfile("tropical-max-plus", "max", "add", "number")),
        (MAX_MIN, AnnotationProfile("max-min", "max", "min", "number")),
        (MAX_TIMES, AnnotationProfile("max-times", "max", "mul", "number")),
    ):
        _PROFILE_BY_SEMIRING[id(_semiring)] = _profile


#: Profile for plain numeric max-folds outside any semiring (KMV estimate
#: tables); ⊕ = max is order-insensitive and exact on int64/float64.
FLOAT_MAX_PROFILE = AnnotationProfile("float-max", "max", "min", "number")


def profile_of(semiring: Semiring) -> Optional[AnnotationProfile]:
    """The vectorization profile of ``semiring``, or None.

    Recognition is by object identity against the standard singletons:
    structurally similar user semirings may carry arbitrary ⊕/⊗ callables,
    and REAL's float ⊕ is order-sensitive — both must stay on the tuple
    kernels.
    """
    return _PROFILE_BY_SEMIRING.get(id(semiring))


def encode_annotations(
    annotations: Sequence[Any],
    profile: AnnotationProfile,
    int_limit: int = _INT_LIMIT,
):
    """Annotations as a typed array, or None when any value does not fit.

    Semantically ``profile.encodable`` per value, but batched: the type
    sweep runs at C level (``map(type, ...)``) and the range/NaN guards run
    on the array, which matters because this sits on the per-batch hot path
    of every vectorized fold.
    """
    types = set(map(type, annotations))
    if profile.kind == "bool":
        return np.asarray(annotations, dtype=bool) if types <= {bool} else None
    if profile.kind == "int":
        if not types <= {int}:  # rejects bool (type(True) is bool) and floats
            return None
        if not types:
            return np.asarray(annotations, dtype=np.int64)
        try:
            array = np.fromiter(annotations, dtype=np.int64, count=len(annotations))
        except OverflowError:  # beyond int64 is certainly beyond int_limit
            return None
        if int(array.min()) <= -int_limit or int(array.max()) >= int_limit:
            return None
        return array
    # "number": int64 when all ints, float64 when all floats.  A *mixed*
    # batch must not vectorize: min/max over float64 would return a float
    # where the scalar semiring returns the original int object.  NaN makes
    # min/max order-sensitive, so any NaN also falls back.
    if types == {int}:
        try:
            array = np.fromiter(annotations, dtype=np.int64, count=len(annotations))
        except OverflowError:
            return None
        if int(array.min()) <= -_FLOAT_EXACT or int(array.max()) >= _FLOAT_EXACT:
            return None
        return array
    if types == {float}:
        array = np.fromiter(annotations, dtype=np.float64, count=len(annotations))
        return None if np.isnan(array).any() else array
    if not types:
        return np.asarray(annotations, dtype=np.int64)
    return None


def decode_annotations(array: Any) -> List[Any]:
    """Back to Python scalars (int/bool/float) for the wire format."""
    return array.tolist()


class ColumnarPartition:
    """One server's annotated tuples in columnar form.

    ``columns[j]`` holds the codec codes of attribute ``j`` for every local
    tuple; ``annotations`` is the profile-typed array.  ``to_items`` decodes
    back to the ``(values, annotation)`` wire format in row order.
    """

    __slots__ = ("columns", "annotations", "size")

    def __init__(self, columns: Tuple[Any, ...], annotations: Any, size: int) -> None:
        self.columns = columns
        self.annotations = annotations
        self.size = size

    @classmethod
    def from_items(
        cls,
        items: Sequence[Tuple[Tuple[Any, ...], Any]],
        width: int,
        codec: ValueCodec,
        profile: AnnotationProfile,
    ) -> Optional["ColumnarPartition"]:
        """Encode ``(values, annotation)`` items; None when annotations do
        not fit the profile (the caller falls back to tuple kernels)."""
        annotations = encode_annotations([item[1] for item in items], profile)
        if annotations is None:
            return None
        columns = tuple(
            codec.encode_many([item[0][j] for item in items]) for j in range(width)
        )
        return cls(columns, annotations, len(items))

    def to_items(self, codec: ValueCodec) -> List[Tuple[Tuple[Any, ...], Any]]:
        decoded = [codec.decode_many(column) for column in self.columns]
        annotations = decode_annotations(self.annotations)
        return [
            (tuple(column[i] for column in decoded), annotations[i])
            for i in range(self.size)
        ]


class ColumnarRelation:
    """A logical :class:`~repro.data.relation.Relation` in columnar form.

    The distributed kernels work on :class:`ColumnarPartition` batches
    directly; this wrapper is the whole-relation variant used by local
    transformations, the benchmarks, and tests.  Round-trips exactly:
    ``from_relation(r).to_relation()`` preserves tuple order, value
    identity, and annotations.
    """

    __slots__ = ("schema", "partition", "codec", "profile", "semiring")

    def __init__(
        self,
        schema: Tuple[str, ...],
        partition: ColumnarPartition,
        codec: ValueCodec,
        profile: AnnotationProfile,
        semiring: Semiring,
    ) -> None:
        self.schema = schema
        self.partition = partition
        self.codec = codec
        self.profile = profile
        self.semiring = semiring

    @classmethod
    def from_relation(
        cls,
        relation,
        semiring: Semiring,
        codec: Optional[ValueCodec] = None,
    ) -> Optional["ColumnarRelation"]:
        """None when the semiring has no profile or annotations do not fit."""
        if not HAS_NUMPY:
            return None
        profile = profile_of(semiring)
        if profile is None:
            return None
        codec = codec or ValueCodec()
        partition = ColumnarPartition.from_items(
            list(relation), len(relation.schema), codec, profile
        )
        if partition is None:
            return None
        return cls(tuple(relation.schema), partition, codec, profile, semiring)

    @property
    def size(self) -> int:
        return self.partition.size

    def to_relation(self, name: str = "columnar"):
        from ..data.relation import Relation

        return Relation(
            name, self.schema, self.partition.to_items(self.codec), self.semiring
        )

    def column_codes(self, attribute: str):
        return self.partition.columns[self.schema.index(attribute)]

    def semijoin_codes(self, attribute: str, allowed_codes) -> "ColumnarRelation":
        """Keep tuples whose ``attribute`` code is in ``allowed_codes``
        (vectorized semijoin filter; row order preserved)."""
        mask = np.isin(self.column_codes(attribute), allowed_codes)
        part = ColumnarPartition(
            tuple(column[mask] for column in self.partition.columns),
            self.partition.annotations[mask],
            int(mask.sum()),
        )
        return ColumnarRelation(self.schema, part, self.codec, self.profile, self.semiring)

    def aggregate(self, group_attrs: Sequence[str]) -> "ColumnarRelation":
        """``Σ_{−group_attrs}`` via sort-and-segment-reduce, groups in
        first-occurrence order (the dict-fold order of the tuple backend)."""
        from .kernels import combine_columns, group_reduce, split_codes

        indices = [self.schema.index(a) for a in group_attrs]
        keys, base = combine_columns(
            [self.partition.columns[i] for i in indices], len(self.codec),
            self.partition.size,
        )
        if keys is None:
            raise OverflowError("key space too large to pack into int64")
        uniq, reduced = group_reduce(
            keys, self.partition.annotations, self.profile.add_ufunc
        )
        columns = tuple(split_codes(uniq, base, len(indices)))
        part = ColumnarPartition(columns, reduced, int(uniq.shape[0]))
        return ColumnarRelation(
            tuple(group_attrs), part, self.codec, self.profile, self.semiring
        )
