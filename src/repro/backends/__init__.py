"""Execution backends (vectorized columnar kernels vs. pure-Python tuples).

The simulator has two interchangeable kernel implementations:

* ``pytuple`` — the original tuple-at-a-time Python kernels; always
  available, always the reference semantics.
* ``numpy`` — columnar kernels (:mod:`repro.backends.columnar`,
  :mod:`repro.backends.kernels`) that batch the hot per-server loops
  (pre/final aggregation, local joins, KMV sketch construction, splitter
  selection) into array operations.

The backends differ **only in wall-clock time**.  Every communication round
still goes through :meth:`repro.mpc.cluster.ClusterView.exchange` with the
same items in the same order and the same destinations, so the metered load
``L``, the :class:`~repro.mpc.stats.CostReport`, and the JSONL trace are
bit-identical across backends — the columnar kernels are constructed to
reproduce the tuple kernels' *first-occurrence* output order exactly (see
docs/performance.md).  Semiring profiles without a numeric dtype
(provenance, opaque, ad-hoc semirings) and fault-injection runs fall back
to ``pytuple`` automatically.
"""

from .dispatch import (
    BACKENDS,
    HAS_NUMPY,
    numpy_enabled,
    resolve_backend,
)

__all__ = ["BACKENDS", "HAS_NUMPY", "numpy_enabled", "resolve_backend"]
