"""Graph-shaped workloads used by the examples.

A directed graph's edge set is exactly a binary relation ``E(u, v)``;
two-hop counting, reachability, and shortest paths all become the paper's
join-aggregate queries over it.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Tuple

from ..data.relation import Relation

__all__ = ["power_law_edges", "grid_road_network", "two_relation_copies"]


def power_law_edges(
    name: str,
    schema: Tuple[str, str],
    nodes: int,
    edges: int,
    alpha: float = 1.1,
    seed: int = 0,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Relation:
    """A social-network-style edge relation: target popularity is Zipfian,
    so a few celebrities have huge in-degree (the skew that breaks naive
    hash partitioning)."""
    rng = random.Random(seed)
    weight_fn = weight_fn or (lambda: 1)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(nodes)]
    total = sum(weights)
    probabilities = [w / total for w in weights]
    relation = Relation(name, schema)
    seen = set()
    while len(seen) < edges:
        source = rng.randrange(nodes)
        target = rng.choices(range(nodes), probabilities)[0]
        if source != target and (source, target) not in seen:
            seen.add((source, target))
            relation.add((source, target), weight_fn())
    return relation


def grid_road_network(
    name: str,
    schema: Tuple[str, str],
    side: int,
    seed: int = 0,
    max_cost: int = 10,
) -> Relation:
    """A ``side × side`` grid of road segments with random positive costs
    (for tropical/min-plus shortest-hop examples).  Nodes are (x, y) pairs."""
    rng = random.Random(seed)
    relation = Relation(name, schema)
    for x in range(side):
        for y in range(side):
            for dx, dy in ((1, 0), (0, 1)):
                nx, ny = x + dx, y + dy
                if nx < side and ny < side:
                    cost = float(rng.randint(1, max_cost))
                    relation.add(((x, y), (nx, ny)), cost)
                    relation.add(((nx, ny), (x, y)), cost)
    return relation


def two_relation_copies(edges: Relation, first: Tuple[str, str], second: Tuple[str, str]):
    """Rename one edge relation into the two copies a 2-hop query needs."""
    r1 = Relation("R1", first, list(edges))
    r2 = Relation("R2", second, list(edges))
    return r1, r2
