"""Instance generators for line, star, star-like, and tree query families.

Random families are parameterized by relation size and per-attribute domain
sizes (which indirectly control OUT); planted families fix OUT by
construction for clean benchmark sweeps.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..semiring import COUNTING, Semiring

__all__ = [
    "bowtie_line",
    "caterpillar_instance",
    "overlapping_star",
    "line_instance",
    "star_instance",
    "starlike_instance",
    "twig_instance",
    "planted_out_line",
    "planted_out_star",
    "random_binary_relation",
]


def random_binary_relation(
    name: str,
    schema: Tuple[str, str],
    tuples: int,
    left_domain: int,
    right_domain: int,
    rng: random.Random,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Relation:
    """A relation of ``tuples`` distinct uniform entries over the domains."""
    weight_fn = weight_fn or (lambda: 1)
    if tuples > left_domain * right_domain:
        raise ValueError("more tuples than cells")
    relation = Relation(name, schema)
    seen = set()
    while len(seen) < tuples:
        entry = (rng.randrange(left_domain), rng.randrange(right_domain))
        if entry not in seen:
            seen.add(entry)
            relation.add(entry, weight_fn())
    return relation


def line_instance(
    length: int,
    tuples: int,
    domain: int,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """Line query over ``length`` relations A1—A2—…—A_{length+1}."""
    rng = random.Random(seed)
    attrs = [f"A{i+1}" for i in range(length + 1)]
    specs = tuple((f"R{i+1}", (attrs[i], attrs[i + 1])) for i in range(length))
    relations = {
        name: random_binary_relation(name, pair, tuples, domain, domain, rng, weight_fn)
        for name, pair in specs
    }
    query = TreeQuery(specs, frozenset({attrs[0], attrs[-1]}))
    return Instance(query, relations, semiring)


def star_instance(
    arms: int,
    tuples: int,
    arm_domain: int,
    centre_domain: int,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """Star query ∑_B R1(A1,B) ⋈ … ⋈ R_arms(A_arms,B)."""
    rng = random.Random(seed)
    specs = tuple((f"R{i+1}", (f"A{i+1}", "B")) for i in range(arms))
    relations = {
        name: random_binary_relation(
            name, pair, tuples, arm_domain, centre_domain, rng, weight_fn
        )
        for name, pair in specs
    }
    query = TreeQuery(specs, frozenset(f"A{i+1}" for i in range(arms)))
    return Instance(query, relations, semiring)


def starlike_instance(
    arm_lengths: Sequence[int],
    tuples: int,
    domain: int,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """Star-like query: arm i is a path of ``arm_lengths[i]`` relations from
    the shared centre B to the output attribute A_i."""
    rng = random.Random(seed)
    specs: List[Tuple[str, Tuple[str, str]]] = []
    relations: Dict[str, Relation] = {}
    outputs = []
    for arm_index, length in enumerate(arm_lengths):
        previous = "B"
        for step in range(length):
            is_last = step == length - 1
            attr = f"A{arm_index+1}" if is_last else f"C{arm_index+1}_{step+1}"
            name = f"R{arm_index+1}_{step+1}"
            specs.append((name, (previous, attr)))
            relations[name] = random_binary_relation(
                name, (previous, attr), tuples, domain, domain, rng, weight_fn
            )
            previous = attr
        outputs.append(f"A{arm_index+1}")
    query = TreeQuery(tuple(specs), frozenset(outputs))
    return Instance(query, relations, semiring)


def twig_instance(
    tuples: int,
    domain: int,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
    bridge_length: int = 1,
) -> Instance:
    """The Figure-3 shape: two high-degree attributes B1, B2, two output
    arms on each, connected by a bridge of ``bridge_length`` relations."""
    rng = random.Random(seed)
    specs: List[Tuple[str, Tuple[str, str]]] = [
        ("Ra1", ("A1", "B1")),
        ("Ra2", ("A2", "B1")),
        ("Rb1", ("A3", "B2")),
        ("Rb2", ("A4", "B2")),
    ]
    previous = "B1"
    for step in range(bridge_length):
        attr = "B2" if step == bridge_length - 1 else f"K{step+1}"
        specs.append((f"Rm{step+1}", (previous, attr)))
        previous = attr
    relations = {
        name: random_binary_relation(name, pair, tuples, domain, domain, rng, weight_fn)
        for name, pair in specs
    }
    query = TreeQuery(tuple(specs), frozenset({"A1", "A2", "A3", "A4"}))
    return Instance(query, relations, semiring)


def planted_out_line(
    length: int,
    n: int,
    out: int,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """Line instance with OUT ≈ ``out`` planted via k disjoint chains of
    ``d × d`` end-rectangles (OUT = k·d², N per relation ≈ n)."""
    if not n <= out <= n * n:
        raise ValueError("planted family needs N ≤ OUT ≤ N²")
    weight_fn = weight_fn or (lambda: 1)
    k = max(1, min(n, round(n * n / out)))
    attrs = [f"A{i+1}" for i in range(length + 1)]
    specs = tuple((f"R{i+1}", (attrs[i], attrs[i + 1])) for i in range(length))
    relations = {name: Relation(name, pair) for name, pair in specs}
    for block in range(k):
        width = n // k + (1 if block < n % k else 0)
        if width == 0:
            continue
        first, last = specs[0][0], specs[-1][0]
        for i in range(width):
            relations[first].add(((f"a{block}_{i}"), (f"m1_{block}")), weight_fn())
            relations[last].add(((f"m{length-1}_{block}"), (f"z{block}_{i}")), weight_fn())
        for middle in range(1, length - 1):
            relations[specs[middle][0]].add(
                ((f"m{middle}_{block}"), (f"m{middle+1}_{block}")), weight_fn()
            )
    return Instance(
        TreeQuery(specs, frozenset({attrs[0], attrs[-1]})), relations, semiring
    )


def planted_out_star(
    arms: int,
    n: int,
    out: int,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """Star instance with OUT ≈ ``out``: k centre values, each joined by a
    private set of d = N/k values per arm, so OUT = k·d^arms = n^arms/k^{arms−1}
    and therefore k = (n^arms/out)^{1/(arms−1)}."""
    weight_fn = weight_fn or (lambda: 1)
    if out >= n ** arms:
        k = 1
    else:
        k = max(1, round((n ** arms / out) ** (1.0 / (arms - 1))))
    k = min(k, n)
    d = max(1, n // k)
    specs = tuple((f"R{i+1}", (f"A{i+1}", "B")) for i in range(arms))
    relations = {name: Relation(name, pair) for name, pair in specs}
    for block in range(k):
        for i in range(d):
            for arm in range(arms):
                relations[specs[arm][0]].add(
                    ((f"v{arm}_{block}_{i}"), (f"b{block}")), weight_fn()
                )
    query = TreeQuery(specs, frozenset(f"A{i+1}" for i in range(arms)))
    return Instance(query, relations, semiring)


def bowtie_line(
    blocks: int,
    fan_out: int,
    fan_mid: int,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """A length-3 line family where Yannakakis is provably bad.

    Each block is an hourglass: ``fan_out`` A1 values → one A2 value →
    ``fan_mid`` A3 values → one A4 value.  The intermediate join
    ``R1 ⋈ R2`` has size blocks·fan_out·fan_mid while
    OUT = blocks·fan_out — so J/OUT = fan_mid, the gap the §4 algorithm
    closes (it aggregates A3 away *before* touching the fat side).
    """
    weight_fn = weight_fn or (lambda: 1)
    specs = (
        ("R1", ("A1", "A2")),
        ("R2", ("A2", "A3")),
        ("R3", ("A3", "A4")),
    )
    relations = {name: Relation(name, pair) for name, pair in specs}
    for block in range(blocks):
        hub = f"h{block}"
        for i in range(fan_out):
            relations["R1"].add((f"a{block}_{i}", hub), weight_fn())
        for j in range(fan_mid):
            mid = f"m{block}_{j}"
            relations["R2"].add((hub, mid), weight_fn())
            relations["R3"].add((mid, f"z{block}"), weight_fn())
    query = TreeQuery(specs, frozenset({"A1", "A4"}))
    return Instance(query, relations, semiring)


def overlapping_star(
    arms: int,
    centres: int,
    fan: int,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """A star family with full join ≫ OUT.

    Every centre value joins the *same* ``fan`` values on each arm, so the
    full join has centres·fan^arms results but only fan^arms distinct
    output combinations — the baseline shuffles the full join while §5
    aggregates the duplicated centres away.
    """
    weight_fn = weight_fn or (lambda: 1)
    specs = tuple((f"R{i+1}", (f"A{i+1}", "B")) for i in range(arms))
    relations = {name: Relation(name, pair) for name, pair in specs}
    for centre in range(centres):
        for arm in range(arms):
            for i in range(fan):
                relations[specs[arm][0]].add((f"v{arm}_{i}", f"b{centre}"), weight_fn())
    query = TreeQuery(specs, frozenset(f"A{i+1}" for i in range(arms)))
    return Instance(query, relations, semiring)


def caterpillar_instance(
    spine: int,
    legs_per_hub: int,
    tuples: int,
    domain: int,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """A caterpillar twig: a spine of non-output hubs B0—B1—…—B_{spine−1},
    each carrying ``legs_per_hub`` output legs.

    With spine ≥ 2 and ≥ 2 legs per hub this is the general-twig shape of
    §7.1 with ``spine`` high-degree attributes — the stress family for the
    skeleton divide & conquer (Figure 3 is spine = 2, legs = 2).
    """
    rng = random.Random(seed)
    specs: List[Tuple[str, Tuple[str, str]]] = []
    outputs: List[str] = []
    for i in range(spine - 1):
        specs.append((f"S{i}", (f"B{i}", f"B{i+1}")))
    for i in range(spine):
        for leg in range(legs_per_hub):
            attr = f"L{i}_{leg}"
            specs.append((f"R{i}_{leg}", (attr, f"B{i}")))
            outputs.append(attr)
    relations = {
        name: random_binary_relation(name, pair, tuples, domain, domain, rng, weight_fn)
        for name, pair in specs
    }
    query = TreeQuery(tuple(specs), frozenset(outputs))
    return Instance(query, relations, semiring)
