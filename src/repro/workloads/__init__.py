"""Workload generators for examples, tests, and benchmark sweeps."""

from .generators import (
    bowtie_line,
    caterpillar_instance,
    overlapping_star,
    line_instance,
    planted_out_line,
    planted_out_star,
    random_binary_relation,
    star_instance,
    starlike_instance,
    twig_instance,
)
from .graphs import grid_road_network, power_law_edges, two_relation_copies
from .matrices import (
    MATMUL_QUERY,
    planted_out_matmul,
    random_sparse_matmul,
    random_sparse_matrix,
    zipf_matmul,
)

__all__ = [
    "MATMUL_QUERY",
    "random_sparse_matrix",
    "random_sparse_matmul",
    "planted_out_matmul",
    "zipf_matmul",
    "bowtie_line",
    "caterpillar_instance",
    "overlapping_star",
    "line_instance",
    "star_instance",
    "starlike_instance",
    "twig_instance",
    "planted_out_line",
    "planted_out_star",
    "random_binary_relation",
    "power_law_edges",
    "grid_road_network",
    "two_relation_copies",
]
