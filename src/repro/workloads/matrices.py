"""Sparse-matrix workload generators.

The benchmark families need instances whose output size OUT can be swept
independently of the input size N — the axis along which Table 1's
``min(·,·)`` crossover moves.  :func:`planted_out_matmul` plants disjoint
``d × d`` rectangles so that OUT = N²/k exactly (up to rounding);
:func:`random_sparse_matmul` and :func:`zipf_matmul` provide uniform and
skewed families for robustness tests.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional, Tuple

from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..semiring import COUNTING, Semiring

__all__ = [
    "MATMUL_QUERY",
    "random_sparse_matrix",
    "random_sparse_matmul",
    "planted_out_matmul",
    "zipf_matmul",
]

MATMUL_QUERY = TreeQuery(
    (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
)


def random_sparse_matrix(
    name: str,
    schema: Tuple[str, str],
    tuples: int,
    rows: int,
    cols: int,
    rng: random.Random,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Relation:
    """A relation with ``tuples`` distinct uniform entries in rows × cols."""
    if tuples > rows * cols:
        raise ValueError("more tuples than cells")
    weight_fn = weight_fn or (lambda: 1)
    relation = Relation(name, schema)
    seen = set()
    while len(seen) < tuples:
        entry = (rng.randrange(rows), rng.randrange(cols))
        if entry not in seen:
            seen.add(entry)
            relation.add(entry, weight_fn())
    return relation


def random_sparse_matmul(
    n1: int,
    n2: int,
    rows: int,
    inner: int,
    cols: int,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """Uniform random sparse matmul instance."""
    rng = random.Random(seed)
    r1 = random_sparse_matrix("R1", ("A", "B"), n1, rows, inner, rng, weight_fn)
    r2 = random_sparse_matrix("R2", ("B", "C"), n2, inner, cols, rng, weight_fn)
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring)


def planted_out_matmul(
    n: int,
    out: int,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """An instance with |R1| = |R2| = N and OUT ≈ ``out`` exactly by design.

    ``k = ⌈N²/out⌉`` inner values each join a private ``N/k × N/k``
    rectangle of A and C values, so OUT = k·(N/k)² = N²/k ≈ out.  Requires
    ``N ≤ out ≤ N²``.
    """
    if not n <= out <= n * n:
        raise ValueError("planted family needs N ≤ OUT ≤ N²")
    weight_fn = weight_fn or (lambda: 1)
    rng = random.Random(seed)
    k = max(1, min(n, round(n * n / out)))
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"))
    produced = 0
    for block in range(k):
        width = n // k + (1 if block < n % k else 0)
        if width == 0:
            continue
        for i in range(width):
            r1.add((("a", block, i), ("b", block)), weight_fn())
            r2.add((("b", block), ("c", block, i)), weight_fn())
        produced += width * width
    rng.random()  # keep the signature honest: family is deterministic today
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring)
    return instance


def zipf_matmul(
    n1: int,
    n2: int,
    inner: int,
    alpha: float = 1.2,
    seed: int = 0,
    semiring: Semiring = COUNTING,
    weight_fn: Optional[Callable[[], object]] = None,
) -> Instance:
    """Skewed instance: the inner attribute B follows a Zipf(alpha) law —
    the regime where skew-oblivious partitioning collapses."""
    rng = random.Random(seed)
    weight_fn = weight_fn or (lambda: 1)
    weights = [1.0 / (rank + 1) ** alpha for rank in range(inner)]
    total = sum(weights)
    probabilities = [w / total for w in weights]

    def sample_b() -> int:
        return rng.choices(range(inner), probabilities)[0]

    r1 = Relation("R1", ("A", "B"))
    seen = set()
    while len(seen) < n1:
        entry = (rng.randrange(4 * n1), sample_b())
        if entry not in seen:
            seen.add(entry)
            r1.add(entry, weight_fn())
    r2 = Relation("R2", ("B", "C"))
    seen = set()
    while len(seen) < n2:
        entry = (sample_b(), rng.randrange(4 * n2))
        if entry not in seen:
            seen.add(entry)
            r2.add(entry, weight_fn())
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring)
