"""Cost-based query planner (docs/planner.md).

Statistics catalog → calibrated Table 1 cost models → plan enumerator.
``plan_query`` is the entry point; the executor's ``algorithm="cost"``
dispatch and the ``repro explain`` subcommand are thin wrappers over it.
"""

from .cost import (
    CALIBRATION_PATH,
    COST_MODELS,
    calibration_constant,
    invalidate_calibration_cache,
    load_calibration,
    predict_load,
    raw_load,
)
from .plan import CandidateScore, Plan, plan_query, rooting_score
from .stats import (
    QueryStatistics,
    RelationStats,
    StatisticsCatalog,
    collect_statistics,
    collect_statistics_in_model,
    estimate_out,
)

__all__ = [
    "CALIBRATION_PATH",
    "COST_MODELS",
    "CandidateScore",
    "Plan",
    "QueryStatistics",
    "RelationStats",
    "StatisticsCatalog",
    "calibration_constant",
    "collect_statistics",
    "collect_statistics_in_model",
    "estimate_out",
    "invalidate_calibration_cache",
    "load_calibration",
    "plan_query",
    "predict_load",
    "raw_load",
    "rooting_score",
]
