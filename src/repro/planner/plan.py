"""Plan enumeration and selection (docs/planner.md).

``plan_query`` walks the cross product the executor can actually run —
every algorithm in :func:`~repro.core.executor.applicable_algorithms`, the
join-tree rootings of the rooted (Yannakakis/tree) algorithms, and the
kernel backend — scores each candidate with the calibrated Table 1 cost
models (:mod:`repro.planner.cost`), and returns an introspectable
:class:`Plan`: the chosen algorithm, its predicted load, every candidate's
score, and the statistics snapshot (with provenance) the decision was
based on.

Rooting note: the Table 1 closed forms are rooting-independent, so a
candidate's *predicted load* does not change with the root; rootings are
scored by a degree-product heuristic (an upper bound on how many tuples a
single output value can fan into on its path to the root) purely to pick
and report the preferred root of the rooted algorithms.  Backend note: the
simulated load ``L`` is backend-invariant by construction, so the backend
dimension collapses to a recommendation (``resolve_backend``) recorded on
the plan rather than scored per candidate.

Ties in predicted load break toward the executor's static
``AUTO_CHOICE``, and overriding that default requires a *decisive*
predicted win (:data:`HYSTERESIS`): calibration constants are fitted per
algorithm/class, so a few-percent cross-algorithm gap is within fit noise
and not worth abandoning the paper's per-class choice for.  Matmul
strategy variants are exempt from the hysteresis — on a matmul query
every candidate instantiates the same Theorem 1 terms, so which terms a
variant *pays* (the estimation pass, worst-case vs output-sensitive) is a
structural difference that is meaningful at any magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..backends.dispatch import resolve_backend
from ..data.query import Instance, TreeQuery
from ..errors import ApplicabilityError, ConfigError
from .cost import COST_MODELS, calibration_constant, predict_load, raw_load
from .stats import (
    QueryStatistics,
    collect_statistics,
    collect_statistics_in_model,
)

__all__ = ["CandidateScore", "Plan", "plan_query", "rooting_score"]

#: Algorithms that pick a join-tree root (everything tree-shaped).
ROOTED_ALGORITHMS = frozenset({"yannakakis", "tree"})

#: A challenger must predict less than this fraction of the static
#: ``AUTO_CHOICE`` candidate's load to displace it (see module docstring).
HYSTERESIS = 0.8

#: Theorem 1 strategy variants: mutually comparable without hysteresis.
_MATMUL_VARIANTS = frozenset(
    {"matmul", "matmul-worst-case", "matmul-output-sensitive", "line"}
)


@dataclass(frozen=True)
class CandidateScore:
    """One scored (algorithm, rooting) candidate."""

    algorithm: str
    #: Calibrated prediction (constant × Table 1 shape), in tuples.
    predicted_load: float
    #: The uncalibrated Table 1 shape value.
    raw_load: float
    #: The calibration constant that was applied.
    constant: float
    #: Preferred join-tree root (rooted algorithms only).
    rooting: Optional[str] = None
    #: How many rootings were scored to pick ``rooting``.
    rootings_considered: int = 1

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "predicted_load": round(self.predicted_load, 3),
            "raw_load": round(self.raw_load, 3),
            "constant": round(self.constant, 4),
        }
        if self.rooting is not None:
            record["rooting"] = self.rooting
            record["rootings_considered"] = self.rootings_considered
        return record


@dataclass(frozen=True)
class Plan:
    """The planner's decision, fully introspectable."""

    query_class: str
    p: int
    chosen: CandidateScore
    #: Every candidate: the chosen one first, the rest cheapest-first (the
    #: two orders differ only when :data:`HYSTERESIS` kept the static
    #: default over a marginally-cheaper challenger).
    candidates: Tuple[CandidateScore, ...]
    statistics: QueryStatistics
    #: Recommended kernel backend for this instance size.
    backend: str

    @property
    def algorithm(self) -> str:
        return self.chosen.algorithm

    @property
    def predicted_load(self) -> float:
        return self.chosen.predicted_load

    def candidate(self, algorithm: str) -> CandidateScore:
        for score in self.candidates:
            if score.algorithm == algorithm:
                return score
        raise KeyError(algorithm)

    def summary(self) -> Dict[str, Any]:
        """Compact JSON-able record for CostReports and trace headers."""
        return {
            "algorithm": self.chosen.algorithm,
            "predicted_load": round(self.chosen.predicted_load, 3),
            "query_class": self.query_class,
            "p": self.p,
            "backend": self.backend,
            "out_estimate": round(self.statistics.out_estimate, 3),
            "out_provenance": self.statistics.out_provenance,
            "stats_mode": self.statistics.mode,
            "candidates": [
                {
                    "algorithm": score.algorithm,
                    "predicted_load": round(score.predicted_load, 3),
                }
                for score in self.candidates
            ],
        }

    def to_dict(self) -> Dict[str, Any]:
        """Full JSON document (the ``repro explain --json`` payload)."""
        return {
            "query_class": self.query_class,
            "p": self.p,
            "backend": self.backend,
            "chosen": self.chosen.to_dict(),
            "candidates": [score.to_dict() for score in self.candidates],
            "statistics": self.statistics.to_dict(),
        }

    def render(self) -> str:
        """ASCII candidate table for the ``repro explain`` command."""
        stats = self.statistics
        lines = [
            f"query class: {self.query_class}   N={stats.total_size}   "
            f"OUT≈{stats.out_estimate:.0f} ({stats.out_provenance})   "
            f"p={self.p}   backend={self.backend}",
            f"{'algorithm':<26} {'predicted':>12} {'raw shape':>12} "
            f"{'constant':>9}  rooting",
        ]
        for score in self.candidates:
            marker = "*" if score is self.chosen else " "
            rooting = score.rooting or "-"
            if score.rooting is not None and score.rootings_considered > 1:
                rooting = f"{score.rooting} (of {score.rootings_considered})"
            lines.append(
                f"{marker}{score.algorithm:<25} {score.predicted_load:>12.1f} "
                f"{score.raw_load:>12.1f} {score.constant:>9.3f}  {rooting}"
            )
        lines.append(f"chosen: {self.chosen.algorithm} "
                     f"(predicted load {self.chosen.predicted_load:.1f})")
        return "\n".join(lines)


# -- rooting heuristic ---------------------------------------------------------


def rooting_score(query: TreeQuery, stats: QueryStatistics, root: str) -> float:
    """Degree-product heuristic for rooting a bottom-up evaluation at
    ``root``: sum over output attributes of the product of max degrees
    along the attribute's path toward the root.

    This bounds how many tuples one output value can fan into while its
    partial results travel to the root; the Table 1 closed forms do not
    depend on it, so it only refines *which* root a rooted algorithm
    reports, never the cross-algorithm choice.
    """
    relation_names = [name for name, _attrs in query.relations]
    multiplier: Dict[str, float] = {root: 1.0}
    for rel_index, child_attr, parent_attr in reversed(query.postorder(root)):
        rel_stats = stats.relation_named(relation_names[rel_index])
        fan = max(1, rel_stats.max_degree_of(parent_attr))
        multiplier[child_attr] = multiplier[parent_attr] * fan
    return float(sum(multiplier[attr] for attr in sorted(query.output)))


def _best_rooting(
    query: TreeQuery, stats: QueryStatistics
) -> Tuple[str, int]:
    roots = sorted(query.attributes)
    best = min(roots, key=lambda root: (rooting_score(query, stats, root), root))
    return best, len(roots)


# -- the enumerator ------------------------------------------------------------


def plan_query(
    instance: Instance,
    p: int = 8,
    statistics: Optional[QueryStatistics] = None,
    stats_mode: str = "offline",
    view: Optional[Any] = None,
    backend: Optional[str] = None,
) -> Plan:
    """Score every runnable candidate for ``instance`` and pick the cheapest.

    ``statistics`` short-circuits collection (a
    :class:`~repro.planner.stats.StatisticsCatalog` hit); otherwise
    ``stats_mode`` selects offline collection (default, unmetered) or
    in-model collection on ``view`` (metered — requires ``view``).
    Deterministic: the same instance and calibration produce an identical
    plan, byte for byte through :meth:`Plan.to_dict`.
    """
    from ..core.executor import AUTO_CHOICE, applicable_algorithms

    if statistics is None:
        if stats_mode == "in-model":
            if view is None:
                raise ConfigError("in-model statistics need a cluster view")
            statistics = collect_statistics_in_model(instance, view)
        elif stats_mode == "offline":
            statistics = collect_statistics(instance)
        else:
            raise ConfigError(f"unknown stats_mode {stats_mode!r}")

    query = instance.query
    query_class = statistics.query_class
    auto_choice = AUTO_CHOICE.get(query_class)

    candidates: List[CandidateScore] = []
    for algorithm in applicable_algorithms(query):
        if algorithm not in COST_MODELS:
            continue
        rooting: Optional[str] = None
        rootings = 1
        if algorithm in ROOTED_ALGORITHMS:
            rooting, rootings = _best_rooting(query, statistics)
        candidates.append(
            CandidateScore(
                algorithm=algorithm,
                predicted_load=predict_load(algorithm, statistics, p),
                raw_load=raw_load(algorithm, statistics, p),
                constant=calibration_constant(algorithm, query_class),
                rooting=rooting,
                rootings_considered=rootings,
            )
        )
    if not candidates:  # pragma: no cover - yannakakis/tree always apply
        raise ApplicabilityError("no candidate algorithm has a cost model")

    def rank(score: CandidateScore) -> Tuple[float, int, str]:
        # Ties break toward the static per-class choice, then by name.
        return (
            score.predicted_load,
            0 if score.algorithm == auto_choice else 1,
            score.algorithm,
        )

    ordered = list(sorted(candidates, key=rank))
    chosen = ordered[0]
    if (
        auto_choice is not None
        and chosen.algorithm != auto_choice
        and not (query_class == "matmul" and chosen.algorithm in _MATMUL_VARIANTS)
    ):
        auto_candidate = next(
            (score for score in ordered if score.algorithm == auto_choice), None
        )
        if auto_candidate is not None and not (
            chosen.predicted_load < HYSTERESIS * auto_candidate.predicted_load
        ):
            chosen = auto_candidate
            ordered.remove(chosen)
            ordered.insert(0, chosen)
    return Plan(
        query_class=query_class,
        p=p,
        chosen=chosen,
        candidates=tuple(ordered),
        statistics=statistics,
        backend=resolve_backend(backend, instance.total_size),
    )
