"""Statistics catalog for the cost-based planner (docs/planner.md).

Every Table 1 load formula is a function of a handful of per-instance
statistics: relation sizes ``N_e``, the total input ``N``, and the output
size ``OUT``.  The planner never looks at the data at decision time —
it looks at a :class:`QueryStatistics` snapshot produced here, in one of
two modes:

* **offline** (default) — a sequential ANALYZE-style scan of the local
  :class:`~repro.data.relation.Relation` objects: exact sizes, per-attribute
  distinct counts, maximum degrees and heavy-hitter counts, plus an OUT
  estimate whose estimator depends on the query shape (see below).  Nothing
  is metered; the snapshot is free in the MPC cost model, the way a real
  system's catalog is maintained outside the query path.
* **in-model** — the same snapshot collected *on the cluster* with metered
  load: relations are loaded, degrees come from
  :func:`~repro.primitives.degrees.degree_table`, and OUT comes from the
  paper's §2.2 KMV-sketch estimator
  (:func:`~repro.primitives.estimate_out.estimate_path_out`) where it
  applies.  The charge lands on the caller's meter under a
  ``planner/stats`` phase, so a plan that pays for its statistics shows
  that load in its :class:`~repro.mpc.stats.CostReport`.

OUT estimators by query shape (the ``out_provenance`` field records which
one ran):

* ``kmv-sketch`` — line-shaped queries (matmul included): the §2.2
  right-to-left KMV propagation, evaluated locally (offline) or
  distributed (in-model).  Exact whenever every per-value reach is below
  the sketch width ``k``.
* ``degree-bound`` — star queries: ``Σ_b Π_i d_i(b)`` over centre values
  ``b`` and per-arm distinct counts ``d_i(b)`` — an exact count of arm
  combinations and an upper bound on OUT (distinct centres may emit the
  same output tuple).
* ``oracle`` — everything else (star-like, twig, general trees): the
  boolean-semiring sequential oracle, i.e. exact OUT by full evaluation.
  Only ever used offline; in-model collection falls back to the offline
  scan for these shapes and records ``oracle-offline-fallback``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..errors import ApplicabilityError, ConfigError
from ..primitives.kmv import MultiKMV
from ..semiring import BOOLEAN

__all__ = [
    "RelationStats",
    "QueryStatistics",
    "StatisticsCatalog",
    "collect_statistics",
    "collect_statistics_in_model",
    "estimate_out",
    "SKETCH_K",
    "SKETCH_REPETITIONS",
]

#: Sketch parameters for the offline KMV estimator — kept equal to the
#: in-model defaults of :mod:`repro.primitives.estimate_out` so the two
#: modes agree on line-shaped instances.
SKETCH_K = 64
SKETCH_REPETITIONS = 5
_SKETCH_SALT = 7000


@dataclass(frozen=True)
class RelationStats:
    """Catalog entry for one relation: size, distincts, degrees, skew."""

    name: str
    size: int
    #: attr → number of distinct values.
    distinct: Tuple[Tuple[str, int], ...]
    #: attr → maximum degree (tuples sharing one value of the attribute).
    max_degree: Tuple[Tuple[str, int], ...]
    #: attr → count of heavy hitters (values with degree² > size, the
    #: paper's √N heavy/light threshold).
    heavy_hitters: Tuple[Tuple[str, int], ...]

    def distinct_of(self, attr: str) -> int:
        return dict(self.distinct).get(attr, 0)

    def max_degree_of(self, attr: str) -> int:
        return dict(self.max_degree).get(attr, 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "size": self.size,
            "distinct": {attr: count for attr, count in self.distinct},
            "max_degree": {attr: count for attr, count in self.max_degree},
            "heavy_hitters": {attr: count for attr, count in self.heavy_hitters},
        }


@dataclass(frozen=True)
class QueryStatistics:
    """Everything the cost models read: the planner's view of an instance."""

    query_class: str
    total_size: int
    relations: Tuple[RelationStats, ...]
    out_estimate: float
    #: Which estimator produced ``out_estimate`` (see module docstring).
    out_provenance: str
    #: ``"offline"`` or ``"in-model"``.
    mode: str
    #: Load charged to the collecting cluster (0 for offline snapshots).
    metered_load: int = 0

    def relation_named(self, name: str) -> RelationStats:
        for stats in self.relations:
            if stats.name == name:
                return stats
        raise KeyError(name)

    def sizes(self) -> List[int]:
        return [stats.size for stats in self.relations]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query_class": self.query_class,
            "total_size": self.total_size,
            "relations": [stats.to_dict() for stats in self.relations],
            "out_estimate": round(self.out_estimate, 3),
            "out_provenance": self.out_provenance,
            "mode": self.mode,
            "metered_load": self.metered_load,
        }


# -- per-relation scans --------------------------------------------------------


def _relation_stats(name: str, relation: Relation) -> RelationStats:
    counts: Dict[str, Dict[Any, int]] = {attr: {} for attr in relation.schema}
    for values, _weight in relation:
        for attr, value in zip(relation.schema, values):
            bucket = counts[attr]
            bucket[value] = bucket.get(value, 0) + 1
    size = len(relation)
    distinct = tuple(
        (attr, len(counts[attr])) for attr in sorted(relation.schema)
    )
    max_degree = tuple(
        (attr, max(counts[attr].values(), default=0))
        for attr in sorted(relation.schema)
    )
    heavy = tuple(
        (
            attr,
            sum(1 for degree in counts[attr].values() if degree * degree > size),
        )
        for attr in sorted(relation.schema)
    )
    return RelationStats(
        name=name,
        size=size,
        distinct=distinct,
        max_degree=max_degree,
        heavy_hitters=heavy,
    )


# -- OUT estimators ------------------------------------------------------------


def _path_relations(
    instance: Instance, order: Sequence[str]
) -> List[Tuple[Relation, int, int]]:
    """``(relation, left_index, right_index)`` for each path step, where the
    indices locate ``order[i]``/``order[i+1]`` in the relation's schema."""
    steps: List[Tuple[Relation, int, int]] = []
    for i in range(len(order) - 1):
        left, right = order[i], order[i + 1]
        for name, attrs in instance.query.relations:
            if set(attrs) == {left, right}:
                relation = instance.relation(name)
                steps.append(
                    (relation, attrs.index(left), attrs.index(right))
                )
                break
        else:  # pragma: no cover - guarded by TreeQuery validation
            raise KeyError((left, right))
    return steps


def _line_out_sketch(instance: Instance, order: Sequence[str]) -> float:
    """Local §2.2 estimator: push KMV bundles right-to-left along the path
    and sum the per-``order[0]``-value reach estimates."""
    steps = _path_relations(instance, order)
    relation, left_index, right_index = steps[-1]
    grouped: Dict[Any, List[Any]] = {}
    for values, _weight in relation:
        grouped.setdefault(values[left_index], []).append(values[right_index])
    sketches: Dict[Any, MultiKMV] = {
        key: MultiKMV.of(elements, SKETCH_K, SKETCH_REPETITIONS, _SKETCH_SALT)
        for key, elements in grouped.items()
    }
    for relation, left_index, right_index in reversed(steps[:-1]):
        merged: Dict[Any, MultiKMV] = {}
        for values, _weight in relation:
            bundle = sketches.get(values[right_index])
            if bundle is None:
                continue
            key = values[left_index]
            held = merged.get(key)
            merged[key] = bundle if held is None else held.merge(bundle)
        sketches = merged
    return float(sum(bundle.estimate() for bundle in sketches.values()))


def _star_out_degree_bound(instance: Instance) -> float:
    """``Σ_b Π_i d_i(b)``: arm combinations per centre value, summed."""
    query = instance.query
    shared = set.intersection(*(set(attrs) for _name, attrs in query.relations))
    centre = next(iter(shared))
    per_relation: List[Dict[Any, int]] = []
    for name, attrs in query.relations:
        centre_index = attrs.index(centre)
        arm_index = 1 - centre_index
        arms: Dict[Any, set] = {}
        for values, _weight in instance.relation(name):
            arms.setdefault(values[centre_index], set()).add(values[arm_index])
        per_relation.append({b: len(vals) for b, vals in arms.items()})
    common = set(per_relation[0])
    for table in per_relation[1:]:
        common &= set(table)
    total = 0
    for b in common:
        product = 1
        for table in per_relation:
            product *= table[b]
        total += product
    return float(total)


def _oracle_out(instance: Instance) -> float:
    """Exact OUT via the boolean-semiring sequential oracle."""
    from ..ram.evaluate import evaluate

    relations = {}
    for name, attrs in instance.query.relations:
        relation = Relation(name, attrs)
        for values, _weight in instance.relation(name):
            relation.add(values, True, BOOLEAN)
        relations[name] = relation
    boolean_instance = Instance(instance.query, relations, BOOLEAN)
    return float(len(evaluate(boolean_instance)))


def estimate_out(instance: Instance, mode: str = "auto") -> Tuple[float, str]:
    """``(estimate, provenance)`` for the instance's output size.

    ``mode="auto"`` picks the shape-appropriate estimator (module
    docstring); ``"kmv"``/``"degree"``/``"oracle"`` force one (``"kmv"``
    requires a line-shaped query, ``"degree"`` a star query).
    """
    query = instance.query
    order = query.path_order()
    if mode == "kmv" or (mode == "auto" and order is not None and query.is_line()):
        if order is None:
            raise ApplicabilityError("kmv OUT estimation needs a line-shaped query")
        return _line_out_sketch(instance, order), "kmv-sketch"
    if mode == "degree" or (mode == "auto" and query.is_star()):
        if not query.is_star():
            raise ApplicabilityError("degree-bound OUT estimation needs a star query")
        return _star_out_degree_bound(instance), "degree-bound"
    if mode in ("auto", "oracle"):
        return _oracle_out(instance), "oracle"
    raise ConfigError(f"unknown OUT estimation mode {mode!r}")


# -- collection entry points ---------------------------------------------------


def collect_statistics(instance: Instance, out_mode: str = "auto") -> QueryStatistics:
    """Offline (unmetered) snapshot of every statistic the planner reads."""
    relations = tuple(
        _relation_stats(name, instance.relation(name))
        for name, _attrs in instance.query.relations
    )
    out_estimate, provenance = estimate_out(instance, out_mode)
    return QueryStatistics(
        query_class=instance.query.classify(),
        total_size=instance.total_size,
        relations=relations,
        out_estimate=out_estimate,
        out_provenance=provenance,
        mode="offline",
    )


def collect_statistics_in_model(instance: Instance, view) -> QueryStatistics:
    """Metered snapshot: statistics computed *on the cluster*.

    Sizes and degree statistics are collected through metered degree
    tables; OUT uses the distributed §2.2 estimator for line-shaped
    queries and falls back to the offline estimator otherwise (recorded in
    the provenance).  The charged load is the difference of the view's
    meter around the collection, reported in ``metered_load`` — and left
    on the meter, so a cost-based run that asked for in-model statistics
    pays for them in its own report.
    """
    from ..data.relation import DistRelation
    from ..primitives.degrees import degree_table
    from ..primitives.estimate_out import estimate_path_out

    tracker = view.tracker
    before = tracker.max_load
    query = instance.query
    with tracker.phase("planner/stats"):
        loaded = {
            name: DistRelation.load(view, instance.relation(name))
            for name, _attrs in query.relations
        }
        relations: List[RelationStats] = []
        for name, attrs in query.relations:
            relation = loaded[name]
            distinct: List[Tuple[str, int]] = []
            max_degree: List[Tuple[str, int]] = []
            heavy: List[Tuple[str, int]] = []
            size = relation.total_size
            for offset, attr in enumerate(sorted(attrs)):
                index = relation.attr_index(attr)
                degrees = degree_table(
                    relation.data,
                    lambda item, index=index: item[0][index],
                    salt=_SKETCH_SALT + 31 * offset,
                )
                local = [
                    [degree for _value, degree in part]
                    for part in degrees.parts
                ]
                view.control_gather([len(part) for part in local])
                distinct.append((attr, sum(len(part) for part in local)))
                max_degree.append(
                    (attr, max((max(part) for part in local if part), default=0))
                )
                heavy.append(
                    (
                        attr,
                        sum(
                            sum(1 for d in part if d * d > size)
                            for part in local
                        ),
                    )
                )
            relations.append(
                RelationStats(
                    name=name,
                    size=size,
                    distinct=tuple(distinct),
                    max_degree=tuple(max_degree),
                    heavy_hitters=tuple(heavy),
                )
            )
        order = query.path_order()
        if order is not None and query.is_line():
            path = [loaded[_name_between(query, order[i], order[i + 1])]
                    for i in range(len(order) - 1)]
            out_estimate, _per_value = estimate_path_out(
                path, list(order), base_salt=_SKETCH_SALT
            )
            provenance = "kmv-sketch"
        else:
            out_estimate, provenance = estimate_out(instance, "auto")
            if provenance == "oracle":
                provenance = "oracle-offline-fallback"
    return QueryStatistics(
        query_class=query.classify(),
        total_size=instance.total_size,
        relations=tuple(relations),
        out_estimate=out_estimate,
        out_provenance=provenance,
        mode="in-model",
        metered_load=max(0, tracker.max_load - before),
    )


def _name_between(query: TreeQuery, left: str, right: str) -> str:
    for name, attrs in query.relations:
        if set(attrs) == {left, right}:
            return name
    raise KeyError((left, right))


# -- the catalog ---------------------------------------------------------------


@dataclass
class StatisticsCatalog:
    """A keyed cache of :class:`QueryStatistics` snapshots.

    A long-lived service would refresh entries as data changes; here the
    catalog lets benchmark sweeps and the executor share one collection
    pass per instance: ``catalog.for_instance(key, instance)`` computes at
    most once per key.
    """

    entries: Dict[str, QueryStatistics] = field(default_factory=dict)

    def for_instance(
        self, key: str, instance: Instance, out_mode: str = "auto"
    ) -> QueryStatistics:
        if key not in self.entries:
            self.entries[key] = collect_statistics(instance, out_mode)
        return self.entries[key]

    def put(self, key: str, statistics: QueryStatistics) -> None:
        self.entries[key] = statistics

    def get(self, key: str) -> Optional[QueryStatistics]:
        return self.entries.get(key)
