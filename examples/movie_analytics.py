"""Relational analytics with the high-level query API.

A miniature ratings warehouse — users rate movies, movies have genres,
users live in cities — queried three ways without constructing a
``TreeQuery`` by hand:

* COUNT(*) GROUP BY (city, genre): how many rating events connect a city
  to a genre (`repro.queries.count_group_by`);
* join-project: which (city, genre) pairs co-occur at all
  (`repro.queries.join_project`);
* and the same grouped count through the full annotated-relation API with
  rating values summed instead of counted.

Run:  python examples/movie_analytics.py
"""

import random

from repro import Instance, Relation, TreeQuery, run_query
from repro.queries import count_group_by, join_project
from repro.semiring import COUNTING


def build_warehouse(seed: int = 7):
    rng = random.Random(seed)
    cities = ["oslo", "lima", "pune", "kyoto", "quito"]
    genres = ["drama", "comedy", "scifi", "noir"]
    users = [f"u{i}" for i in range(40)]
    movies = [f"m{i}" for i in range(25)]

    lives_in = Relation("LivesIn", ("City", "User"))
    for user in users:
        lives_in.add((rng.choice(cities), user), 1)

    rated = Relation("Rated", ("User", "Movie"))
    seen = set()
    while len(seen) < 150:
        pair = (rng.choice(users), rng.choice(movies))
        if pair not in seen:
            seen.add(pair)
            rated.add(pair, rng.randint(1, 5))  # the star rating

    genre_of = Relation("GenreOf", ("Movie", "Genre"))
    for movie in movies:
        genre_of.add((movie, rng.choice(genres)), 1)

    schemas = [
        ("LivesIn", ("City", "User")),
        ("Rated", ("User", "Movie")),
        ("GenreOf", ("Movie", "Genre")),
    ]
    return schemas, {"LivesIn": lives_in, "Rated": rated, "GenreOf": genre_of}


def main() -> None:
    schemas, relations = build_warehouse()

    # 1. COUNT(*) GROUP BY (City, Genre): a line query under the hood.
    counts = count_group_by(relations, schemas, group_by=["City", "Genre"], p=8)
    print(f"rating events per (city, genre) — {counts.out_size} groups, "
          f"algorithm: {counts.algorithm}, load {counts.report.max_load}")
    top = sorted(counts.relation.tuples.items(), key=lambda kv: -kv[1])[:5]
    for (city, genre), count in top:
        print(f"  {city:>6} × {genre:<7} {count:>3} ratings")

    # 2. Which pairs co-occur at all (join-project / conjunctive query).
    pairs = join_project(relations, schemas, output=["City", "Genre"], p=8)
    print(f"\ndistinct (city, genre) connections: {len(pairs)}")

    # 3. Sum of stars instead of counts: keep the annotations.
    query = TreeQuery(tuple(schemas), frozenset({"City", "Genre"}))
    stars = run_query(Instance(query, relations, COUNTING), p=8)
    loudest = max(stars.relation.tuples.items(), key=lambda kv: kv[1])
    print(f"most stars overall: {loudest[0][0]} × {loudest[0][1]} "
          f"with {loudest[1]} total stars")


if __name__ == "__main__":
    main()
