"""Distributed transitive closure and all-pairs shortest paths.

One more consequence of the semiring view: the Kleene closure
``R ⊕ R² ⊕ R³ ⊕ …`` is a loop of the paper's sparse matrix
multiplications.  Path doubling (``C ← C ⊕ C·C``) converges in
⌈log₂ diameter⌉ distributed rounds of matmul — reachability over the
boolean semiring, all-pairs shortest paths over (min, +), with the same
code.

Run:  python examples/transitive_closure.py
"""

import networkx as nx

from repro.data import Relation
from repro.linalg import transitive_closure
from repro.semiring import BOOLEAN, TROPICAL_MIN_PLUS
from repro.workloads import power_law_edges


def main() -> None:
    edges = power_law_edges("E", ("A", "B"), nodes=60, edges=150, seed=11)
    print(f"graph: 60 nodes, {len(edges)} edges\n")

    # Reachability (boolean semiring).
    boolean_edges = Relation("E", ("A", "B"), [(k, True) for k, _ in edges])
    reach, report = transitive_closure(boolean_edges, BOOLEAN, p=16)
    print(f"reachable pairs: {len(reach)}  "
          f"(closure load={report.max_load}, rounds={report.rounds})")

    # All-pairs shortest paths (tropical semiring, unit edge costs).
    unit_edges = Relation("E", ("A", "B"), [(k, 1.0) for k, _ in edges])
    distances, report = transitive_closure(unit_edges, TROPICAL_MIN_PLUS, p=16)
    print(f"shortest-path pairs: {len(distances)}  "
          f"(load={report.max_load}, rounds={report.rounds})")

    # Cross-check against networkx BFS distances.
    graph = nx.DiGraph(list(boolean_edges.tuples))
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    checked = 0
    for (u, v), distance in distances:
        if u != v:
            assert lengths[u][v] == distance, ((u, v), lengths[u][v], distance)
            checked += 1
    print(f"verified {checked} distances against networkx ✓")

    farthest = max(
        ((u, v, d) for (u, v), d in distances.tuples.items() if u != v),
        key=lambda t: t[2],
    )
    print(f"\ngraph 'diameter' witness: {farthest[0]} → {farthest[1]} "
          f"in {int(farthest[2])} hops")


if __name__ == "__main__":
    main()
