"""Two-hop counting on a skewed social graph — where locality pays.

Counts, for every (follower, celebrity-of-celebrity) pair, the number of
2-hop follow paths on a power-law graph.  A handful of celebrities have
enormous in-degree, so the number of elementary products (2-hop path
instances) dwarfs both the input and the distinct output pairs.  The
baseline — even with its skew-resilient join — must *shuffle* every product
to aggregate it; the paper's algorithm arranges the products so most
aggregate where they are computed, and its load stays lower the skewer the
graph gets.

Run:  python examples/social_two_hop.py
"""

from repro import Instance, Relation, TreeQuery, run_query
from repro.semiring import COUNTING
from repro.workloads import power_law_edges


def main() -> None:
    query = TreeQuery(
        (("Follows1", ("A", "B")), ("Follows2", ("B", "C"))),
        output=frozenset({"A", "C"}),
    )
    p = 16
    print(f"{'alpha':>6} {'max deg':>8} {'paths':>8} {'OUT':>8} "
          f"{'L(base)':>8} {'L(ours)':>8} {'speedup':>8}")
    for alpha in (0.8, 1.2, 1.6):
        edges = power_law_edges(
            "E", ("U", "V"), nodes=150, edges=3000, alpha=alpha, seed=7
        )
        max_degree = max(
            edges.degree("V", v) for v in edges.active_domain("V")
        )
        instance = Instance(
            query,
            {
                "Follows1": Relation("Follows1", ("A", "B"), list(edges)),
                "Follows2": Relation("Follows2", ("B", "C"), list(edges)),
            },
            COUNTING,
        )
        baseline = run_query(instance, p=p, algorithm="yannakakis")
        ours = run_query(instance, p=p, algorithm="auto")
        assert baseline.relation.tuples == ours.relation.tuples
        print(
            f"{alpha:>6} {max_degree:>8} "
            f"{baseline.report.elementary_products:>8} {ours.out_size:>8} "
            f"{baseline.report.max_load:>8} {ours.report.max_load:>8} "
            f"{baseline.report.max_load / max(1, ours.report.max_load):>8.2f}"
        )
    print("\n(Both algorithms compute the same 2-hop path instances; the "
          "baseline ships them all to aggregate, the paper's algorithm "
          "aggregates most of them in place — the gap widens with skew.)")


if __name__ == "__main__":
    main()
