"""Shortest paths via tropical matrix multiplication.

The semiring framework means "matrix multiplication" computes far more than
numeric products: over (min, +), ∑_B R(A,B) ⋈ R(B,C) yields, for every pair
(a, c), the cheapest 2-hop route a → b → c.  This example runs it on a grid
road network and cross-checks a few entries against networkx's Dijkstra on
the 2-hop-restricted graph.

Run:  python examples/shortest_paths.py
"""

import math

import networkx as nx

from repro import Instance, Relation, TreeQuery, run_query
from repro.semiring import TROPICAL_MIN_PLUS
from repro.workloads import grid_road_network


def main() -> None:
    side = 12
    roads = grid_road_network("E", ("U", "V"), side=side, seed=42)
    print(f"road network: {side}×{side} grid, {len(roads)} directed segments")

    query = TreeQuery(
        (("Hop1", ("A", "B")), ("Hop2", ("B", "C"))),
        output=frozenset({"A", "C"}),
    )
    hop1 = Relation("Hop1", ("A", "B"), list(roads))
    hop2 = Relation("Hop2", ("B", "C"), list(roads))
    instance = Instance(query, {"Hop1": hop1, "Hop2": hop2}, TROPICAL_MIN_PLUS)

    result = run_query(instance, p=16)
    print(f"2-hop distance pairs computed: {result.out_size}")
    print(f"cluster load L = {result.report.max_load}, "
          f"rounds = {result.report.rounds}\n")

    # Cross-check against networkx: min over b of cost(a,b) + cost(b,c).
    graph = nx.DiGraph()
    for (u, v), cost in roads.tuples.items():
        graph.add_edge(u, v, weight=cost)

    checked = 0
    for (a, c), distance in sorted(result.relation.tuples.items())[:200]:
        best = math.inf
        for b in graph.successors(a):
            if graph.has_edge(b, c):
                best = min(best, graph[a][b]["weight"] + graph[b][c]["weight"])
        assert best == distance, ((a, c), best, distance)
        checked += 1
    print(f"verified {checked} entries against networkx adjacency ✓")

    source = (0, 0)
    reachable = sorted(
        (dist, dest) for (src, dest), dist in result.relation.tuples.items()
        if src == source
    )[:5]
    print(f"\ncheapest 2-hop destinations from {source}:")
    for dist, dest in reachable:
        print(f"  {dest}: cost {dist}")

    # Bonus: swap the semiring and the same query returns the THREE
    # cheapest routes per pair instead of one (top-k semiring).
    from repro.semiring import top_k_smallest

    top3 = top_k_smallest(3)
    hop1_k = Relation("Hop1", ("A", "B"), [(k, (w,)) for k, w in roads.tuples.items()])
    hop2_k = Relation("Hop2", ("B", "C"), [(k, (w,)) for k, w in roads.tuples.items()])
    ranked = run_query(
        Instance(query, {"Hop1": hop1_k, "Hop2": hop2_k}, top3), p=16
    )
    a, c = next(iter(sorted(ranked.relation.tuples)))
    print(f"\ntop-3 route costs {a} → {c}: {ranked.relation.tuples[(a, c)]}")


if __name__ == "__main__":
    main()
