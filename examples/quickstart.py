"""Quickstart: sparse matrix multiplication as a join-aggregate query.

Multiplies two sparse 0/1 matrices over the counting semiring — i.e.
computes, for every (a, c), the number of length-2 paths a → b → c — on a
simulated 16-server MPC cluster, with both the distributed Yannakakis
baseline and the paper's optimal algorithm, and prints the measured loads.

Run:  python examples/quickstart.py
"""

from repro import Instance, Relation, TreeQuery, run_query
from repro.semiring import COUNTING


def main() -> None:
    # The query ∑_B R1(A,B) ⋈ R2(B,C): a tree with two binary relations,
    # output attributes {A, C}, aggregation over B.
    query = TreeQuery(
        (("R1", ("A", "B")), ("R2", ("B", "C"))),
        output=frozenset({"A", "C"}),
    )

    # A banded sparse matrix: entry (i, j) present when j ∈ {i, i+1, i+2}.
    size = 300
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"))
    for i in range(size):
        for offset in (0, 1, 2):
            r1.add((i, (i + offset) % size), 1)
            r2.add(((i + offset) % size, i), 1)

    instance = Instance(query, {"R1": r1, "R2": r2}, COUNTING)

    print(f"N = {instance.total_size} input tuples, p = 16 servers\n")
    for algorithm in ("yannakakis", "auto"):
        result = run_query(instance, p=16, algorithm=algorithm)
        label = "baseline (distributed Yannakakis)" if algorithm == "yannakakis" \
            else f"paper algorithm ({result.algorithm})"
        print(f"{label}:")
        print(f"  output size     : {result.out_size}")
        print(f"  max load L      : {result.report.max_load}")
        print(f"  communication   : {result.report.total_communication}")
        print(f"  rounds          : {result.report.rounds}")
        print(f"  ⊗-products      : {result.report.elementary_products}\n")

    result = run_query(instance, p=16)
    sample = sorted(result.relation.tuples.items())[:5]
    print("first few results (a, c) → #paths:")
    for key, count in sample:
        print(f"  {key} → {count}")


if __name__ == "__main__":
    main()
