"""A general tree query end-to-end: the §7 pipeline on a retail schema.

The query joins five relations shaped exactly like the paper's Figure 3
twig — two "hub" attributes (customer segment, product line) each fanning
out to output attributes, connected by a bridge — and asks for total sales
grouped by (region, channel, brand, category), aggregating the hubs away.
The shape is neither free-connex, a line, nor a star: it exercises the full
§7 machinery (statistics, heavy/light split, branch materialization).

Run:  python examples/tree_analytics.py
"""

import random

from repro import Instance, Relation, TreeQuery, run_query
from repro.semiring import COUNTING


def main() -> None:
    rng = random.Random(2024)
    segments = [f"seg{i}" for i in range(12)]
    lines = [f"line{i}" for i in range(12)]
    regions = [f"region{i}" for i in range(8)]
    channels = ["web", "store", "phone", "partner"]
    brands = [f"brand{i}" for i in range(10)]
    categories = [f"cat{i}" for i in range(6)]

    query = TreeQuery(
        (
            ("RegionOf", ("Region", "Segment")),
            ("ChannelOf", ("Channel", "Segment")),
            ("Buys", ("Segment", "Line")),
            ("BrandOf", ("Brand", "Line")),
            ("CategoryOf", ("Category", "Line")),
        ),
        output=frozenset({"Region", "Channel", "Brand", "Category"}),
    )

    def random_relation(name, schema, left, right, tuples):
        relation = Relation(name, schema)
        seen = set()
        while len(seen) < tuples:
            entry = (rng.choice(left), rng.choice(right))
            if entry not in seen:
                seen.add(entry)
                relation.add(entry, rng.randint(1, 9))  # sales count
        return relation

    instance = Instance(
        query,
        {
            "RegionOf": random_relation("RegionOf", ("Region", "Segment"), regions, segments, 40),
            "ChannelOf": random_relation("ChannelOf", ("Channel", "Segment"), channels, segments, 30),
            "Buys": random_relation("Buys", ("Segment", "Line"), segments, lines, 60),
            "BrandOf": random_relation("BrandOf", ("Brand", "Line"), brands, lines, 45),
            "CategoryOf": random_relation("CategoryOf", ("Category", "Line"), categories, lines, 35),
        },
        COUNTING,
    )

    print(f"query class: {query.classify()} "
          f"(two hubs: Segment, Line — the Figure-3 shape)")
    result = run_query(instance, p=16)
    print(f"N = {instance.total_size}, OUT = {result.out_size}, "
          f"load = {result.report.max_load}, rounds = {result.report.rounds}\n")

    top = sorted(
        result.relation.tuples.items(), key=lambda kv: -kv[1]
    )[:8]
    print(f"{'brand':>8} {'category':>9} {'channel':>8} {'region':>8} {'sales':>6}")
    for (brand, category, channel, region), sales in top:
        print(f"{brand:>8} {category:>9} {channel:>8} {region:>8} {sales:>6}")

    baseline = run_query(instance, p=16, algorithm="yannakakis")
    assert baseline.relation.tuples == result.relation.tuples
    print(f"\nbaseline load {baseline.report.max_load} vs "
          f"paper algorithm {result.report.max_load}")


if __name__ == "__main__":
    main()
