"""Why-provenance through a line query: which base tuples explain a result?

Annotated relations carry their answers' derivations when the semiring is a
provenance semiring.  Here a 3-step supply chain — supplier → part →
assembly → product — is queried for (supplier, product) connections, and
every answer arrives with its *witness sets*: the minimal combinations of
base tuples that produce it.  The MPC algorithms never look inside the
annotations, so provenance rides through the whole distributed pipeline.

Run:  python examples/provenance_lineage.py
"""

from repro import Instance, Relation, TreeQuery, run_query
from repro.semiring import WHY_PROVENANCE


def witness(tag: str):
    """The why-provenance annotation of one base tuple."""
    return frozenset({frozenset({tag})})


def main() -> None:
    query = TreeQuery(
        (
            ("Supplies", ("Supplier", "Part")),
            ("UsedIn", ("Part", "Assembly")),
            ("BuildInto", ("Assembly", "Product")),
        ),
        output=frozenset({"Supplier", "Product"}),
    )

    supplies = Relation("Supplies", ("Supplier", "Part"))
    used_in = Relation("UsedIn", ("Part", "Assembly"))
    build_into = Relation("BuildInto", ("Assembly", "Product"))

    for supplier, part in [
        ("acme", "bolt"), ("acme", "gear"), ("globex", "gear"),
        ("globex", "spring"), ("initech", "bolt"),
    ]:
        supplies.add((supplier, part), witness(f"S:{supplier}->{part}"))
    for part, assembly in [
        ("bolt", "frame"), ("gear", "motor"), ("spring", "motor"),
        ("gear", "frame"),
    ]:
        used_in.add((part, assembly), witness(f"U:{part}->{assembly}"))
    for assembly, product in [("frame", "bike"), ("motor", "bike"),
                              ("motor", "scooter")]:
        build_into.add((assembly, product), witness(f"B:{assembly}->{product}"))

    instance = Instance(
        query,
        {"Supplies": supplies, "UsedIn": used_in, "BuildInto": build_into},
        WHY_PROVENANCE,
    )
    result = run_query(instance, p=8)

    print("supplier → product connections with their witness sets:\n")
    for (product, supplier), witnesses in sorted(result.relation.tuples.items()):
        print(f"{supplier} → {product}:")
        for witness_set in sorted(witnesses, key=sorted):
            chain = " , ".join(sorted(witness_set))
            print(f"    via {{{chain}}}")
        print()
    print(f"(computed on a simulated cluster: load {result.report.max_load}, "
          f"{result.report.rounds} rounds)")


if __name__ == "__main__":
    main()
