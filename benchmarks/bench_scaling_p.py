"""E11 — scaling in p (the figure implicit in every Table-1 bound).

At a fixed instance, the baseline's load falls like 1/p while the new
matmul algorithm's falls like max(1/p, 1/√p·…) per its two branches; both
series are recorded so the speedup-vs-p curve can be read off directly.
"""

import pytest

from repro import run_query
from repro.workloads import planted_out_matmul, planted_out_star

from harness import registry

P_SWEEP = [4, 16, 64]


def test_matmul_scaling_in_p(benchmark):
    table = registry.table(
        "E11",
        "Load vs p — matmul, planted family (N=800, OUT=51200)",
        ["p", "L(yann)", "L(ours)", "speedup"],
    )
    instance = planted_out_matmul(n=800, out=51200)

    def run():
        rows = []
        for p in P_SWEEP:
            baseline = run_query(instance, p=p, algorithm="yannakakis")
            ours = run_query(instance, p=p, algorithm="auto")
            assert baseline.relation.tuples == ours.relation.tuples
            rows.append(
                (p, baseline.report.max_load, ours.report.max_load,
                 baseline.report.max_load / max(1, ours.report.max_load))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)
    # Both loads must decrease in p.
    yann_loads = [row[1] for row in rows]
    our_loads = [row[2] for row in rows]
    assert yann_loads[0] > yann_loads[-1]
    assert our_loads[0] > our_loads[-1]


def test_star_scaling_in_p(benchmark):
    table = registry.table(
        "E11b",
        "Load vs p — star query, planted family (3 arms, N=300, OUT≈21600)",
        ["p", "L(yann)", "L(ours)"],
    )
    instance = planted_out_star(arms=3, n=300, out=21600)

    def run():
        rows = []
        for p in P_SWEEP:
            baseline = run_query(instance, p=p, algorithm="yannakakis")
            ours = run_query(instance, p=p, algorithm="auto")
            assert baseline.relation.tuples == ours.relation.tuples
            rows.append((p, baseline.report.max_load, ours.report.max_load))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        table.add(*row)
    assert rows[0][2] > rows[-1][2]
