"""E7 — ablation: *locality* is where the matmul win comes from (§1.5).

The paper: "our algorithm performs the same amount of computation as the
Yannakakis algorithm and computes all the O(N·√OUT) elementary products …
The key to the reduction in load is locality: we arrange these elementary
products to be computed on the servers in such a way that most of them can
be aggregated locally.  The standard Yannakakis algorithm has no locality
at all, and all the elementary products are shuffled around."

We therefore measure, for both algorithms on the same instances:
  * elementary products computed (must be ≈ equal — same work), and
  * total communication (the baseline's must scale with the product count,
    ours must not).
"""

import pytest

from repro import run_query
from repro.workloads import planted_out_matmul

from harness import registry

N = 800
P = 16


@pytest.mark.parametrize("out", [3200, 25600, 204800])
def test_locality_ablation(benchmark, out):
    table = registry.table(
        "E7",
        f"Locality ablation — same products, different shuffling (N={N}, p={P})",
        ["OUT", "products(yann)", "products(ours)", "comm(yann)", "comm(ours)",
         "L(yann)", "L(ours)"],
    )
    instance = planted_out_matmul(n=N, out=out)

    def run():
        baseline = run_query(instance, p=P, algorithm="yannakakis")
        ours = run_query(instance, p=P, algorithm="auto")
        assert baseline.relation.tuples == ours.relation.tuples
        return baseline, ours

    baseline, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    table.add(
        out,
        baseline.report.elementary_products,
        ours.report.elementary_products,
        baseline.report.total_communication,
        ours.report.total_communication,
        baseline.report.max_load,
        ours.report.max_load,
    )
    # Same semiring work, within a small constant (both must compute every
    # product of the planted family at least once).
    assert ours.report.elementary_products >= baseline.report.elementary_products / 2
    assert ours.report.elementary_products <= 4 * baseline.report.elementary_products
    if out >= 25600:
        # The baseline ships ≈ every product; ours aggregates locally.
        assert ours.report.total_communication < baseline.report.total_communication


def test_baseline_comm_tracks_products(benchmark):
    """Communication of the baseline grows ≈ linearly with the product count
    (it shuffles the intermediate join); ours stays near-flat."""

    def run():
        rows = []
        for out in (3200, 204800):
            instance = planted_out_matmul(n=N, out=out)
            baseline = run_query(instance, p=P, algorithm="yannakakis")
            ours = run_query(instance, p=P, algorithm="auto")
            rows.append(
                (baseline.report.total_communication, ours.report.total_communication)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline_growth = rows[1][0] / rows[0][0]
    ours_growth = rows[1][1] / rows[0][1]
    assert baseline_growth > 4 * ours_growth
