"""Backend benchmark: pytuple vs numpy kernels, wall-clock.

Unlike the load-metered experiments (``bench_table1_*``), this script
measures *wall-clock* — the one thing the backends are allowed to differ
in.  Two tiers:

* **kernels** — the hot per-server primitives (hash partitioning,
  reduce-by-key folding, semijoin membership) head-to-head: the tuple
  backend's dict/loop kernel vs the columnar kernel on identical data;
* **end-to-end** — ``run_query`` on Table-1-scale counting matmul
  instances with ``backend="pytuple"`` vs ``backend="numpy"``, asserting
  along the way that answers and cost reports are identical.

Results land in ``BENCH_kernels.json`` (repo root by default) so CI can
track the speedup and fail if the vectorized backend ever regresses below
the reference implementation.  Run directly::

    PYTHONPATH=src python benchmarks/bench_backends.py [--tiny] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import Any, Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.backends.columnar import ValueCodec, profile_of
from repro.backends.dispatch import HAS_NUMPY, np
from repro.config import ExecutionConfig
from repro.core.executor import run_query
from repro.mpc.hashing import hash_to_bucket
from repro.semiring import COUNTING
from repro.workloads import planted_out_matmul, random_sparse_matmul


def _time(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds (best is the stable statistic
    for short single-process benchmarks)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_kernels(n: int, repeats: int) -> List[Dict[str, Any]]:
    """The hot per-server primitives, loop vs vector, on identical data.

    Items are ``((key,), weight)`` pairs and the loop kernels hash/fold
    tuple keys through ``key_fn``/``value_fn`` lambdas — exactly the
    per-item work of the tuple backend's ``reduce_by_key``/``repartition``
    stages; the vector kernels include their codec encoding cost.
    """
    from repro.backends.kernels import group_reduce, isin_filter

    rng = random.Random(7)
    items = [((rng.randint(0, n // 4),), rng.randint(1, 5)) for _ in range(n)]
    members = {(value,) for value in rng.sample(range(n // 4 + 1), max(1, n // 16))}

    from repro.core.two_way_join import _VectorJoinSpec, local_join_aggregate

    key_fn = lambda item: item[0]  # noqa: E731 - mirrors the primitives
    value_fn = lambda item: item[1]  # noqa: E731
    combine = lambda a, b: a + b  # noqa: E731

    codec = ValueCodec()
    member_ids = codec.encode_many(sorted(members))
    profile = profile_of(COUNTING)
    # Encoding is a per-exchange boundary cost; the fold/filter kernels run
    # over already-encoded arrays, so they are timed that way here (the
    # hash-partition and join rows include their encode cost).
    ids = codec.encode_many([key_fn(item) for item in items])
    weights = np.asarray([value_fn(item) for item in items], dtype=np.int64)

    def partition_loop() -> List[int]:
        return [hash_to_bucket(key_fn(item), 16, 3) for item in items]

    def partition_vec() -> Any:
        return codec.buckets(codec.encode_many([key_fn(item) for item in items]), 16, 3)

    def reduce_loop() -> Dict[Any, int]:
        acc: Dict[Any, int] = {}
        for item in items:
            key = key_fn(item)
            value = value_fn(item)
            acc[key] = combine(acc[key], value) if key in acc else value
        return acc

    def reduce_vec() -> Any:
        return group_reduce(ids, weights, profile.add_ufunc)

    def semijoin_loop() -> List[Any]:
        return [item for item in items if key_fn(item) in members]

    def semijoin_vec() -> Any:
        return isin_filter(ids, member_ids)

    # The matmul hot loop: local join-aggregate over an elementary-product
    # stream ~10x the input size in the heavy-aggregation regime (products
    # >> distinct outputs — where the paper's output-sensitive algorithms
    # operate), exercised through the real local_join_aggregate entry point
    # on both backends.
    join_n = max(1, n // 5)
    join_domain = max(1, join_n // 10)
    out_domain = max(1, join_n // 500)
    left = [((rng.randint(0, out_domain), rng.randint(0, join_domain)), 1)
            for _ in range(join_n)]
    right = [((rng.randint(0, join_domain), rng.randint(0, out_domain)), 1)
             for _ in range(join_n)]
    spec = _VectorJoinSpec(
        codec=codec, profile=profile, left_key_col=1, right_key_col=0,
        out_sources=(("L", 0), ("R", 1)),
    )
    join_args = (
        lambda item: (item[0][1],),
        lambda item: (item[0][0],),
        lambda l, r: (l[0], r[1]),
        COUNTING,
    )

    def join_loop() -> Any:
        return local_join_aggregate(left, right, *join_args)

    def join_vec() -> Any:
        return local_join_aggregate(left, right, *join_args, vec=spec)

    products = join_loop()[1]
    assert join_loop()[0] == join_vec()[0], "join kernels disagree"

    rows = []
    for name, size, loop, vec in (
        ("hash-partition", n, partition_loop, partition_vec),
        ("reduce-by-key", n, reduce_loop, reduce_vec),
        ("semijoin-isin", n, semijoin_loop, semijoin_vec),
        ("join-aggregate", products, join_loop, join_vec),
    ):
        pytuple_s = _time(loop, repeats)
        numpy_s = _time(vec, repeats)
        rows.append({
            "kernel": name,
            "n": size,
            "pytuple_s": pytuple_s,
            "numpy_s": numpy_s,
            "speedup": pytuple_s / numpy_s if numpy_s > 0 else float("inf"),
        })
    return rows


def bench_end_to_end(
    family: str, instance: Any, n: int, p: int, repeats: int
) -> Dict[str, Any]:
    """``run_query`` on one matmul instance across all three backends;
    answers and metered reports are asserted identical before timing."""

    def run(backend: str):
        return run_query(instance, config=ExecutionConfig(p=p, backend=backend))

    reference = run("pytuple")
    for backend in ("numpy", "columnar"):
        other = run(backend)
        assert reference.relation.tuples == other.relation.tuples, \
            f"backend={backend}: disagrees on the answer"
        assert reference.report.to_dict() == other.report.to_dict(), \
            f"backend={backend}: disagrees on the metered cost report"

    pytuple_s = _time(lambda: run("pytuple"), repeats)
    numpy_s = _time(lambda: run("numpy"), repeats)
    columnar_s = _time(lambda: run("columnar"), repeats)
    return {
        "family": family,
        "n": n,
        "out": len(reference.relation),
        "p": p,
        "input_size": instance.total_size,
        "max_load": reference.report.max_load,
        "pytuple_s": pytuple_s,
        "numpy_s": numpy_s,
        "columnar_s": columnar_s,
        "speedup": pytuple_s / numpy_s if numpy_s > 0 else float("inf"),
        "columnar_speedup": (
            pytuple_s / columnar_s if columnar_s > 0 else float("inf")
        ),
        "reports_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke scale (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (best is kept)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_kernels.json"),
        metavar="PATH", help="result JSON destination (default: repo root)")
    args = parser.parse_args(argv)

    if not HAS_NUMPY:
        print("numpy unavailable: nothing to benchmark", file=sys.stderr)
        return 1

    # End-to-end instances come in two regimes.  The planted-OUT family
    # has products == OUT, so output materialization (shared by every
    # backend) bounds the win; the dense family has products ≫ OUT — the
    # heavy-aggregation regime the worst-case-optimal algorithms target —
    # where the reference backend folds every elementary product through a
    # Python dict and the columnar backend's advantage compounds.
    if args.tiny:
        kernel_n = 50_000
        e2e = [
            ("matmul", planted_out_matmul(n=1000, out=64_000), 1000),
            ("matmul-dense", random_sparse_matmul(4000, 4000, 150, 60, 150), 4000),
        ]
    else:
        kernel_n = 200_000
        e2e = [
            ("matmul", planted_out_matmul(n=1000, out=16_000), 1000),
            ("matmul", planted_out_matmul(n=1000, out=64_000), 1000),
            ("matmul", planted_out_matmul(n=2000, out=64_000), 2000),
            ("matmul-dense",
             random_sparse_matmul(20_000, 20_000, 400, 60, 400), 20_000),
            ("matmul-dense",
             random_sparse_matmul(40_000, 40_000, 600, 80, 600), 40_000),
        ]

    kernels = bench_kernels(kernel_n, args.repeats)
    end_to_end = [
        bench_end_to_end(family, instance, n, 16, args.repeats)
        for family, instance, n in e2e
    ]

    document = {
        "scale": "tiny" if args.tiny else "full",
        "repeats": args.repeats,
        "kernels": kernels,
        "end_to_end": end_to_end,
    }
    path = os.path.normpath(args.out)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    for row in kernels:
        print(f"kernel {row['kernel']:<16} n={row['n']:<8} "
              f"pytuple={row['pytuple_s']:.4f}s numpy={row['numpy_s']:.4f}s "
              f"speedup={row['speedup']:.1f}x")
    for row in end_to_end:
        print(f"{row['family']} n={row['n']} OUT={row['out']} p={row['p']}: "
              f"pytuple={row['pytuple_s']:.3f}s numpy={row['numpy_s']:.3f}s "
              f"columnar={row['columnar_s']:.3f}s "
              f"speedup={row['speedup']:.2f}x/"
              f"{row['columnar_speedup']:.2f}x (reports identical)")
    print(f"written: {path}")

    failed = False
    if any(row["speedup"] < 1.0 for row in end_to_end):
        print("FAIL: numpy slower than pytuple end-to-end", file=sys.stderr)
        failed = True
    # The columnar backend must beat pytuple wherever products dominate;
    # break-even planted rows at tiny scale are tolerated, regressions in
    # the dense regime are not.
    if any(row["columnar_speedup"] < 1.0 for row in end_to_end
           if row["family"] == "matmul-dense"):
        print("FAIL: columnar slower than pytuple on dense matmul",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
