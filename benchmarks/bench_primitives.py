"""E8/E9 — the §2.1 primitive toolbox and the §2.2 estimator.

Every primitive must run in O(1) rounds with O(N/p) load — including under
adversarial key skew — and the KMV OUT estimator must be a constant-factor
approximation with linear load.
"""

import random

import pytest

from repro.data import DistRelation
from repro.mpc import Distributed, MPCCluster
from repro.primitives import (
    distributed_sort,
    estimate_path_out,
    parallel_packing,
    reduce_by_key,
    remove_dangling,
    semijoin,
)
from repro.ram import evaluate
from repro.workloads import planted_out_matmul, zipf_matmul

from harness import registry

N = 4000
P = 16


def _uniform_items(seed=0):
    rng = random.Random(seed)
    return [(rng.randint(0, N), rng.randint(0, 9)) for _ in range(N)]


def _skewed_items(seed=0):
    rng = random.Random(seed)
    return [(0 if rng.random() < 0.5 else rng.randint(0, N), 1) for _ in range(N)]


@pytest.mark.parametrize("skew", ["uniform", "zipf-like"])
def test_primitive_loads(benchmark, skew):
    table = registry.table(
        "E8",
        f"Primitive loads, N={N}, p={P} (bound: O(N/p) per round, O(1) rounds)",
        ["primitive", "skew", "max load", "rounds", "N/p"],
    )
    items = _uniform_items() if skew == "uniform" else _skewed_items()

    def run():
        rows = []
        for name, op in (
            ("sort", lambda v: distributed_sort(
                Distributed.from_items(v, items), lambda x: x)),
            ("reduce-by-key", lambda v: reduce_by_key(
                Distributed.from_items(v, items),
                lambda x: x[0], lambda x: x[1], lambda a, b: a + b)),
            ("semijoin", lambda v: semijoin(
                Distributed.from_items(v, items),
                Distributed.from_items(v, items[: N // 4]),
                lambda x: x[0])),
            ("packing", lambda v: parallel_packing(
                Distributed.from_items(v, [abs(x[1]) / 10 + 0.01 for x in items]),
                lambda x: x)),
        ):
            cluster = MPCCluster(P)
            op(cluster.view())
            report = cluster.report()
            rows.append((name, skew, report.max_load, report.rounds, N // P))
            assert report.max_load <= 6 * N / P + 4 * P, name
            assert report.rounds <= 8, name
        return rows

    for row in benchmark.pedantic(run, rounds=1, iterations=1):
        table.add(*row)


def test_dangling_removal_load(benchmark):
    table = registry.table(
        "E8b",
        f"Dangling-tuple removal (matmul query, N={N}, p={P})",
        ["family", "max load", "rounds"],
    )

    def run():
        rows = []
        for family, instance in (
            ("planted", planted_out_matmul(n=N // 2, out=N)),
            ("zipf", zipf_matmul(N // 2, N // 2, 50, seed=1)),
        ):
            cluster = MPCCluster(P)
            view = cluster.view()
            loaded = {
                name: DistRelation.load(view, instance.relation(name))
                for name, _ in instance.query.relations
            }
            remove_dangling(instance.query, loaded)
            report = cluster.report()
            rows.append((family, report.max_load, report.rounds))
            assert report.max_load <= 8 * instance.total_size / P + 4 * P
        return rows

    for row in benchmark.pedantic(run, rounds=1, iterations=1):
        table.add(*row)


@pytest.mark.parametrize("out", [2000, 32000])
def test_out_estimator_accuracy_and_load(benchmark, out):
    table = registry.table(
        "E9",
        f"§2.2 KMV OUT estimator (planted matmul, N={N // 2}, p={P})",
        ["OUT exact", "OUT est", "rel err", "max load"],
    )
    instance = planted_out_matmul(n=N // 2, out=out)
    exact = len(evaluate(instance))

    def run():
        cluster = MPCCluster(P)
        view = cluster.view()
        r1 = DistRelation.load(view, instance.relation("R1"))
        r2 = DistRelation.load(view, instance.relation("R2"))
        total, _per_a = estimate_path_out([r1, r2], ["A", "B", "C"])
        return total, cluster.report()

    total, report = benchmark.pedantic(run, rounds=1, iterations=1)
    error = abs(total - exact) / exact
    table.add(exact, total, error, report.max_load)
    assert error < 0.5  # constant-factor approximation
    assert report.max_load <= 8 * instance.total_size / P + 4 * P
