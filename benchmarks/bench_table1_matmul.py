"""E1 — Table 1, row "Matrix multiplication".

Regenerates the paper's comparison for sparse matmul: the distributed
Yannakakis baseline has load Θ(N/p + N·√OUT/p) while Theorem 1 achieves
O(N/p + min(√(N1N2/p), (N1N2·OUT)^{1/3}/p^{2/3})).  We sweep OUT on the
planted-OUT family at fixed N and p and record both measured loads next to
the closed-form targets; the checks assert the paper's *shape*: the new
algorithm wins for every OUT above the crossover and its advantage grows
with OUT, while its load stays within a constant of the min(·,·) envelope.
"""

import pytest

from repro import run_query
from repro.theory import matmul_new_load, matmul_yannakakis_load
from repro.workloads import planted_out_matmul

from harness import registry

N = 1000
P = 16
OUT_SWEEP = [1000, 4000, 16000, 64000, 250000]


def _measure(out: int):
    instance = planted_out_matmul(n=N, out=out)
    baseline = run_query(instance, p=P, algorithm="yannakakis")
    ours = run_query(instance, p=P, algorithm="auto")
    assert baseline.relation.tuples == ours.relation.tuples
    return baseline.report, ours.report


@pytest.mark.parametrize("out", OUT_SWEEP)
def test_table1_matmul_row(benchmark, out):
    table = registry.table(
        "E1",
        f"Table 1 / matrix multiplication (N={N}, p={P}; planted-OUT family)",
        ["OUT", "L(yann)", "L(ours)", "speedup", "th.yann", "th.ours"],
    )
    baseline, ours = benchmark.pedantic(_measure, args=(out,), rounds=1, iterations=1)
    speedup = baseline.max_load / max(1, ours.max_load)
    table.add(
        out,
        baseline.max_load,
        ours.max_load,
        speedup,
        matmul_yannakakis_load(2 * N, out, P),
        matmul_new_load(N, N, out, P),
    )
    # Shape assertions (constants are generous; the trend is the claim).
    if out >= 16 * N:
        assert ours.max_load < baseline.max_load
    assert ours.max_load <= 8 * matmul_new_load(N, N, out, P) + 4 * N / P


def test_table1_matmul_speedup_grows(benchmark):
    """The baseline/ours ratio must increase monotonically in OUT."""

    def run():
        ratios = []
        for out in (4000, 64000):
            baseline, ours = _measure(out)
            ratios.append(baseline.max_load / max(1, ours.max_load))
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios[-1] > ratios[0]


def test_table1_matmul_rounds_constant(benchmark):
    """O(1) rounds: the round count must not grow with OUT."""

    def run():
        rounds = []
        for out in (1000, 64000):
            _baseline, ours = _measure(out)
            rounds.append(ours.rounds)
        return rounds

    rounds = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rounds[1] <= rounds[0] + 10  # dispatcher may add a few fixed phases


@pytest.mark.parametrize("out", [4000, 64000, 250000])
def test_table1_matmul_row_p64(benchmark, out):
    """The same sweep at p = 64 (DESIGN.md's second cluster size)."""
    table = registry.table(
        "E1b",
        f"Table 1 / matrix multiplication (N={N}, p=64; planted-OUT family)",
        ["OUT", "L(yann)", "L(ours)", "speedup"],
    )

    def run():
        instance = planted_out_matmul(n=N, out=out)
        baseline = run_query(instance, p=64, algorithm="yannakakis")
        ours = run_query(instance, p=64, algorithm="auto")
        assert baseline.relation.tuples == ours.relation.tuples
        return baseline.report, ours.report

    baseline, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    table.add(out, baseline.max_load, ours.max_load,
              baseline.max_load / max(1, ours.max_load))
    if out >= 64000:
        assert ours.max_load < baseline.max_load
