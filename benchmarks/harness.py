"""Benchmark harness: paper-style result tables.

Benchmarks measure the paper's cost metric — the simulated cluster's *load*
``L`` — not wall-clock time (wall-clock of a simulator is meaningless; the
``pytest-benchmark`` timings are reported only as run-cost context).  Each
experiment records rows into a global registry; a pytest hook prints every
table at the end of the session and appends it to ``benchmarks/results.md``
so EXPERIMENTS.md can cite the numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["ExperimentTable", "registry", "format_table"]


@dataclass
class ExperimentTable:
    """One experiment's result table (id, caption, header, rows)."""

    experiment_id: str
    caption: str
    header: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *row: object) -> None:
        self.rows.append(row)


class _Registry:
    def __init__(self) -> None:
        self.tables: Dict[str, ExperimentTable] = {}

    def table(self, experiment_id: str, caption: str, header: Sequence[str]) -> ExperimentTable:
        if experiment_id not in self.tables:
            self.tables[experiment_id] = ExperimentTable(experiment_id, caption, header)
        return self.tables[experiment_id]

    def render_all(self) -> str:
        blocks = []
        for experiment_id in sorted(self.tables):
            blocks.append(format_table(self.tables[experiment_id]))
        return "\n\n".join(blocks)


registry = _Registry()


def format_table(table: ExperimentTable) -> str:
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    cells = [list(map(str, table.header))] + [
        [fmt(v) for v in row] for row in table.rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(table.header))]
    lines = [f"== {table.experiment_id}: {table.caption} =="]
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def write_results(path: str) -> None:
    if not registry.tables:
        return
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write(registry.render_all() + "\n")
