"""Benchmark harness: paper-style result tables.

Benchmarks measure the paper's cost metric — the simulated cluster's *load*
``L`` — not wall-clock time (wall-clock of a simulator is meaningless; the
``pytest-benchmark`` timings are reported only as run-cost context).  Each
experiment records rows into a global registry; a pytest hook prints every
table at the end of the session and rewrites ``benchmarks/results.md`` with
the latest run on top plus a dated history of earlier runs, and writes the
same data machine-readably to ``benchmarks/results.json`` for CI trend
tracking.  EXPERIMENTS.md cites the numbers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ExperimentTable",
    "registry",
    "format_table",
    "write_results",
    "write_results_json",
]

_LATEST_HEADER = "## Latest run — "
_HISTORY_HEADER = "## History"
#: Dated entries kept in the history section (oldest are dropped).
HISTORY_LIMIT = 9


@dataclass
class ExperimentTable:
    """One experiment's result table (id, caption, header, rows)."""

    experiment_id: str
    caption: str
    header: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)

    def add(self, *row: object) -> None:
        self.rows.append(row)


class _Registry:
    def __init__(self) -> None:
        self.tables: Dict[str, ExperimentTable] = {}

    def table(self, experiment_id: str, caption: str, header: Sequence[str]) -> ExperimentTable:
        if experiment_id not in self.tables:
            self.tables[experiment_id] = ExperimentTable(experiment_id, caption, header)
        return self.tables[experiment_id]

    def render_all(self) -> str:
        blocks = []
        for experiment_id in sorted(self.tables):
            blocks.append(format_table(self.tables[experiment_id]))
        return "\n\n".join(blocks)


registry = _Registry()


def _ensure_parent(path: str) -> None:
    """``makedirs`` that tolerates a bare filename (empty dirname)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)


def format_table(table: ExperimentTable) -> str:
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:,.2f}"
        return str(value)

    cells = [list(map(str, table.header))] + [
        [fmt(v) for v in row] for row in table.rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(table.header))]
    lines = [f"== {table.experiment_id}: {table.caption} =="]
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _parse_existing(text: str) -> Tuple[Optional[str], str, List[str]]:
    """Split an existing results.md into (latest_stamp, latest_body, history).

    Pre-history files (plain table dumps) become one undated history entry.
    """
    history_index = text.find("\n" + _HISTORY_HEADER)
    if history_index >= 0:
        head, tail = text[:history_index], text[history_index + 1 + len(_HISTORY_HEADER):]
    else:
        head, tail = text, ""
    entries = [f"### {entry.strip()}" for entry in tail.split("\n### ") if entry.strip()]

    latest_index = head.find(_LATEST_HEADER)
    if latest_index < 0:
        body = head.strip()
        if body:
            return None, body, entries
        return None, "", entries
    after = head[latest_index + len(_LATEST_HEADER):]
    stamp, _, body = after.partition("\n")
    return stamp.strip(), body.strip(), entries


def write_results(path: str, now: Optional[str] = None) -> None:
    """Write ``results.md``: the latest run's tables plus a dated history.

    The previous latest run (if any) is folded into the ``## History``
    section, capped at :data:`HISTORY_LIMIT` entries so the file stays
    reviewable.
    """
    if not registry.tables:
        # An empty run would only churn real results down the capped
        # history; the always-valid machine-readable file is results.json.
        return
    _ensure_parent(path)
    stamp = now or datetime.now().isoformat(timespec="seconds")

    history: List[str] = []
    if os.path.exists(path):
        previous_stamp, previous_body, history = _parse_existing(open(path).read())
        if previous_body:
            label = previous_stamp or "(undated earlier run)"
            history.insert(0, f"### Run — {label}\n\n{previous_body}")
    history = history[:HISTORY_LIMIT]

    parts = [
        "# Benchmark results",
        "",
        "Measured-load tables from `pytest benchmarks/` (see harness.py);",
        "machine-readable copy in `results.json`.",
        "",
        f"{_LATEST_HEADER}{stamp}",
        "",
        registry.render_all(),
    ]
    if history:
        parts += ["", _HISTORY_HEADER, "", "\n\n".join(history)]
    with open(path, "w") as handle:
        handle.write("\n".join(parts) + "\n")


def write_results_json(path: str, now: Optional[str] = None) -> None:
    """Write ``results.json``: every table as structured data for CI trends.

    An empty registry (e.g. a sweep whose family selection matched nothing)
    still produces a *valid* document with ``"tables": {}`` — consumers can
    always ``json.load`` the file instead of special-casing its absence.
    """
    _ensure_parent(path)
    stamp = now or datetime.now().isoformat(timespec="seconds")
    document = {
        "generated": stamp,
        "tables": {
            experiment_id: {
                "caption": table.caption,
                "header": list(table.header),
                "rows": [list(row) for row in table.rows],
            }
            for experiment_id, table in sorted(registry.tables.items())
        },
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
