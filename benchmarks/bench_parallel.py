"""Process-mode benchmark: sequential vs worker-pool wall-clock.

The ``"process"`` execution mode promises two things: answers, cost
reports, and traces that are *bit-identical* to the sequential simulator
at any worker count, and wall-clock wins on the dense heavy-aggregation
instances whose chunked join kernels dominate the run.  This script
measures both — identity is asserted before any timing, then
``run_query`` on the columnar backend is timed across a worker sweep
(1 / 2 / 4) on the same dense matmul instances ``bench_backends.py``
uses for its end-to-end tier.

The document records ``cores`` (the CPUs this process may use): speedup
on a single-core container is physically impossible — the workers
time-slice one CPU and IPC is pure overhead — so the ≥ 1.5× dense-family
gate in ``regression.py`` only arms when the committed document was
measured with ``cores >= 4`` at full scale.  Numbers from a smaller
machine are committed as honest environment-limited measurements, never
extrapolated.

Results land in ``BENCH_parallel.json`` (repo root by default)::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--tiny] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.backends.dispatch import HAS_NUMPY
from repro.config import ExecutionConfig
from repro.core.executor import run_query
from repro.workloads import random_sparse_matmul

WORKER_SWEEP = (1, 2, 4)


def _cores() -> int:
    """CPUs available to this process (affinity-aware when possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_instance(
    family: str, instance: Any, n: int, p: int, repeats: int
) -> Dict[str, Any]:
    """One dense instance across the worker sweep, identity checked first."""

    def run(workers: int):
        return run_query(
            instance,
            config=ExecutionConfig(p=p, backend="columnar", workers=workers),
        )

    reference = run(1)
    for workers in WORKER_SWEEP[1:]:
        other = run(workers)  # also warms the pool before timing
        assert reference.relation.tuples == other.relation.tuples, \
            f"workers={workers}: disagrees on the answer"
        assert reference.report.to_dict() == other.report.to_dict(), \
            f"workers={workers}: disagrees on the metered cost report"

    timings = {
        str(workers): _time(lambda w=workers: run(w), repeats)
        for workers in WORKER_SWEEP
    }
    seq_s = timings["1"]
    row = {
        "family": family,
        "n": n,
        "out": len(reference.relation),
        "p": p,
        "input_size": instance.total_size,
        "max_load": reference.report.max_load,
        "workers_s": timings,
        "identical": True,
    }
    for workers in WORKER_SWEEP[1:]:
        parallel_s = timings[str(workers)]
        row[f"speedup_{workers}"] = (
            seq_s / parallel_s if parallel_s > 0 else float("inf")
        )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke scale (seconds, not minutes)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per measurement (best is kept)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_parallel.json"),
        metavar="PATH", help="result JSON destination (default: repo root)")
    args = parser.parse_args(argv)

    if not HAS_NUMPY:
        print("numpy unavailable: nothing to benchmark", file=sys.stderr)
        return 1

    # The dense heavy-aggregation regime (products ≫ OUT) is where the
    # chunked join-reduce kernels carry the run — the same instances as
    # bench_backends.py's dense end-to-end tier, so the two documents'
    # sequential columns cross-check each other.
    if args.tiny:
        instances = [
            ("matmul-dense", random_sparse_matmul(4000, 4000, 150, 60, 150), 4000),
        ]
    else:
        instances = [
            ("matmul-dense",
             random_sparse_matmul(20_000, 20_000, 400, 60, 400), 20_000),
            ("matmul-dense",
             random_sparse_matmul(40_000, 40_000, 600, 80, 600), 40_000),
        ]

    rows = [
        bench_instance(family, instance, n, 16, args.repeats)
        for family, instance, n in instances
    ]

    cores = _cores()
    document = {
        "scale": "tiny" if args.tiny else "full",
        "repeats": args.repeats,
        "cores": cores,
        "workers": list(WORKER_SWEEP),
        "rows": rows,
    }
    path = os.path.normpath(args.out)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    for row in rows:
        sweep = "  ".join(
            f"w{workers}={row['workers_s'][str(workers)]:.3f}s"
            for workers in WORKER_SWEEP
        )
        print(f"{row['family']} n={row['n']} OUT={row['out']} p={row['p']}: "
              f"{sweep}  speedup@4={row['speedup_4']:.2f}x "
              f"(identity asserted)")
    print(f"cores={cores}  written: {path}")

    # The wall-clock gate needs real parallel hardware; on fewer than 4
    # cores the sweep is an overhead measurement, reported but not gated.
    if cores >= 4 and not args.tiny:
        if any(row["speedup_4"] < 1.5 for row in rows
               if row["family"] == "matmul-dense"):
            print("FAIL: dense matmul below 1.5x at 4 workers on "
                  f"{cores} cores", file=sys.stderr)
            return 1
    elif cores < 4:
        print(f"note: {cores} core(s) visible — speedup gate not armed "
              "(workers time-slice one CPU; IPC is pure overhead here)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
