"""Benchmark session wiring: print every experiment table at the end."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from harness import registry, write_results, write_results_json  # noqa: E402


def pytest_terminal_summary(terminalreporter):
    if not registry.tables:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("paper experiment tables (measured load, not wall-clock)")
    for line in registry.render_all().splitlines():
        terminalreporter.write_line(line)
    results_path = os.path.join(os.path.dirname(__file__), "results.md")
    write_results(results_path)
    json_path = os.path.join(os.path.dirname(__file__), "results.json")
    write_results_json(json_path)
    terminalreporter.write_line(
        f"\n[tables also written to {results_path} and {json_path}]"
    )
