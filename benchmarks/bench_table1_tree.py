"""E4 — Table 1, row "Tree".

Baseline: O(N/p + N·OUT/p).  New algorithm (§7):
O(N·OUT^{2/3}/p + (N+OUT)/p).  Measured on the Figure-3 twig family
(two high-degree attributes joined by a bridge) and on star-like twigs,
sweeping the output size through the domain width.
"""

import pytest

from repro import run_query
from repro.theory import new_algorithm_load, yannakakis_load
from repro.workloads import starlike_instance, twig_instance

from harness import registry

P = 16
TUPLES = 250


def _measure(instance):
    baseline = run_query(instance, p=P, algorithm="yannakakis")
    ours = run_query(instance, p=P, algorithm="auto")
    assert baseline.relation.tuples == ours.relation.tuples
    return baseline, ours


@pytest.mark.parametrize("domain", [24, 48, 96])
def test_table1_tree_row(benchmark, domain):
    table = registry.table(
        "E4",
        f"Table 1 / tree (twig) queries (Figure-3 family, N={TUPLES}/relation, p={P})",
        ["domain", "OUT", "L(yann)", "L(ours)", "th.yann", "th.ours"],
    )
    instance = twig_instance(tuples=TUPLES, domain=domain, seed=domain)
    baseline, ours = benchmark.pedantic(
        _measure, args=(instance,), rounds=1, iterations=1
    )
    n = instance.total_size
    out = baseline.out_size
    table.add(
        domain,
        out,
        baseline.report.max_load,
        ours.report.max_load,
        yannakakis_load("tree", n, out, P),
        new_algorithm_load("tree", n, out, P),
    )
    assert ours.report.max_load <= 20 * new_algorithm_load("tree", n, out, P) + 8 * n / P


def test_table1_starlike_row(benchmark):
    table = registry.table(
        "E4b",
        f"Star-like twigs (arms 1-2-2, N={TUPLES}/relation, p={P})",
        ["domain", "OUT", "L(yann)", "L(ours)"],
    )

    def run():
        rows = []
        for domain in (16, 40):
            instance = starlike_instance(
                [1, 2, 2], tuples=TUPLES, domain=domain, seed=domain
            )
            baseline, ours = _measure(instance)
            rows.append(
                (domain, baseline.out_size, baseline.report.max_load,
                 ours.report.max_load)
            )
        return rows

    for row in benchmark.pedantic(run, rounds=1, iterations=1):
        table.add(*row)


def test_table1_tree_dense_twig_beats_baseline(benchmark):
    """A fat twig (small domain ⇒ huge intermediates) is where §7 wins."""

    def run():
        instance = twig_instance(tuples=TUPLES, domain=24, seed=7)
        return _measure(instance)

    baseline, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ours.report.max_load < baseline.report.max_load


def test_table1_caterpillar_row(benchmark):
    """Deeper skeletons: a 3-hub caterpillar (V* of size 3, two recursion
    levels of §7.1)."""
    from repro.workloads import caterpillar_instance

    table = registry.table(
        "E4c",
        f"Caterpillar twigs (3 hubs × 2 legs, p={P})",
        ["tuples", "OUT", "L(yann)", "L(ours)"],
    )

    def run():
        rows = []
        for tuples, domain in ((20, 8), (30, 12)):
            instance = caterpillar_instance(
                spine=3, legs_per_hub=2, tuples=tuples, domain=domain, seed=tuples,
            )
            baseline, ours = _measure(instance)
            rows.append((tuples, baseline.out_size, baseline.report.max_load,
                         ours.report.max_load))
        return rows

    for row in benchmark.pedantic(run, rounds=1, iterations=1):
        table.add(*row)
