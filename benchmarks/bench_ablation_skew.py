"""E13 — ablation: what skew-resilient joins buy (§1.4, [5, 13]).

The baseline's optimal two-way join neutralizes heavy keys with a
fragment-replicate cell grid.  We compare it against a skew-*oblivious*
hash join (everything of one key on one server) on the single-heavy-key
family, with an aggregating query (``Σ_C``), so the join phase — not the
final OUT/p reduce — is the measured bottleneck: the naive join's load is
pinned at ≈ 2N by the server owning the heavy key, while the grid join's
falls with p.
"""

import pytest

from repro.core.two_way_join import join_aggregate_naive, join_aggregate_pair
from repro.data import DistRelation, Instance, Relation
from repro.mpc import MPCCluster
from repro.ram import evaluate
from repro.semiring import COUNTING
from repro.workloads import MATMUL_QUERY

from harness import registry

#: Σ_C: aggregate everything but A, so the result is tiny and the join
#: phase dominates the measured load.
KEEP = ("A",)


def _single_heavy_instance(n):
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(n)])
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)


def _expected(instance):
    full = evaluate(instance)  # keyed (A, C)
    out = {}
    for (a, _c), count in full.tuples.items():
        out[(a,)] = out.get((a,), 0) + count
    return out


def _measure(instance, join_fn, p):
    cluster = MPCCluster(p)
    view = cluster.view()
    result = join_fn(
        DistRelation.load(view, instance.relation("R1")),
        DistRelation.load(view, instance.relation("R2")),
        KEEP,
        COUNTING,
    )
    assert dict(result.data.collect()) == _expected(instance)
    return cluster.report()


@pytest.mark.parametrize("p", [4, 16, 64])
def test_skew_ablation(benchmark, p):
    table = registry.table(
        "E13",
        "Skew ablation — naive hash join vs fragment-replicate grid "
        "(one heavy key, N=400/side, query Σ_C)",
        ["p", "L(naive)", "L(grid)", "naive/grid"],
    )
    instance = _single_heavy_instance(400)

    def run():
        naive = _measure(instance, join_aggregate_naive, p)
        grid = _measure(instance, join_aggregate_pair, p)
        return naive, grid

    naive, grid = benchmark.pedantic(run, rounds=1, iterations=1)
    table.add(p, naive.max_load, grid.max_load,
              naive.max_load / max(1, grid.max_load))
    # The naive join funnels both relations through the heavy key's server.
    assert naive.max_load >= 2 * 400 * 0.9
    if p >= 16:
        assert grid.max_load < naive.max_load / 1.5


def test_grid_advantage_grows_with_p(benchmark):
    def run():
        ratios = []
        instance = _single_heavy_instance(400)
        for p in (4, 64):
            naive = _measure(instance, join_aggregate_naive, p)
            grid = _measure(instance, join_aggregate_pair, p)
            ratios.append(naive.max_load / max(1, grid.max_load))
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ratios[-1] > ratios[0]
