"""Perf-regression observatory over the committed benchmark baselines.

The repo commits four machine-readable benchmark documents at the root —
``BENCH_kernels.json`` (pytuple vs numpy wall-clock, written by
``bench_backends.py``), ``BENCH_parallel.json`` (sequential vs
worker-pool wall-clock, written by ``bench_parallel.py``; its dense
≥ 1.5× speedup gate arms only when the document was measured on ≥ 4
cores at full scale), ``BENCH_planner.json`` (cost-based planner
regret sweep, written by ``bench_planner.py``), and ``BENCH_ivm.json``
(materialized-view maintenance vs recompute loads, written by
``bench_ivm.py``; at full scale its small-delta rows must beat recompute
by ≥ 5× and every row's incremental answer must equal the recompute
answer).  This script turns them from write-only artifacts into a
regression gate:

1. **normalize** — each document is flattened into named metrics with a
   kind (``wall`` seconds, ``load`` items, ``ratio``) and a direction
   (lower- or higher-is-better), so the comparison logic never touches the
   two schemas directly;
2. **compare** — a fresh run (``--run``, or pre-made documents via
   ``--fresh-kernels``/``--fresh-planner``) is compared metric-by-metric
   against the committed baseline with noise-tolerant thresholds: wall
   metrics *fail* only past :data:`WALL_FAIL` (1.3×), *warn* past
   :data:`WALL_WARN` (1.1×), and sub-:data:`MIN_WALL_S` timings are never
   flagged (pure jitter).  Deterministic metrics (measured loads, regret
   ratios) are held tighter: any increase warns, > :data:`DETERMINISTIC_FAIL`
   fails — the simulator is seeded, so these should not move at all;
3. **trend** — the comparison lands as a table in ``benchmarks/results.md``
   (via the harness's latest + dated-history format) next to the
   load-metered experiment tables.

With no fresh input the script validates the committed baselines alone:
schema normalization, plus the documents' own internal gates (backend
reports identical, numpy never slower end-to-end, planner ``vs_auto``
within 1.1×).  CI runs ``--run --tiny --report-only``: a tiny-scale fresh
run is *reported* against the full-scale baseline but can't gate (scales
are incomparable; the status column says so).

Exit codes: 0 green (or ``--report-only``), 1 regression, 2 usage/error.

Run::

    PYTHONPATH=src python benchmarks/regression.py                # validate
    PYTHONPATH=src python benchmarks/regression.py --run --tiny --report-only
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Metric",
    "Finding",
    "normalize_ivm",
    "normalize_kernels",
    "normalize_parallel",
    "normalize_planner",
    "compare_metrics",
    "validate_baseline",
    "main",
]

#: Dense-family speedup the committed full-scale BENCH_parallel.json must
#: show at 4 workers — armed only when the document was measured on >= 4
#: cores (PARALLEL_MIN_CORES); a single-core container time-slices the
#: workers, so its honest numbers are environment-limited, not gated.
PARALLEL_SPEEDUP_GATE = 1.5
PARALLEL_MIN_CORES = 4

#: Wall-clock regression factor that fails the gate.
WALL_FAIL = 1.3
#: Wall-clock regression factor that is reported but does not gate.
WALL_WARN = 1.1
#: Wall timings below this are jitter; never flagged in either direction.
MIN_WALL_S = 0.005
#: Deterministic (load/ratio) metrics fail past this factor; any other
#: increase warns — seeded simulations should not move at all.
DETERMINISTIC_FAIL = 1.1

_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
KERNELS_BASELINE = os.path.join(_ROOT, "BENCH_kernels.json")
PLANNER_BASELINE = os.path.join(_ROOT, "BENCH_planner.json")
PARALLEL_BASELINE = os.path.join(_ROOT, "BENCH_parallel.json")
IVM_BASELINE = os.path.join(_ROOT, "BENCH_ivm.json")


@dataclass(frozen=True)
class Metric:
    """One normalized benchmark number.

    ``kind`` is ``"wall"`` (noisy seconds), ``"load"`` (deterministic item
    count), or ``"ratio"`` (deterministic dimensionless figure);
    ``direction`` is ``"lower"`` or ``"higher"`` (is better).
    """

    name: str
    value: float
    kind: str
    direction: str = "lower"


@dataclass(frozen=True)
class Finding:
    """Baseline-vs-fresh outcome for one metric name."""

    name: str
    kind: str
    baseline: Optional[float]
    fresh: Optional[float]
    #: Regression factor, normalized so > 1 is always *worse* (direction
    #: folded in); None when either side is absent or not comparable.
    factor: Optional[float]
    #: ok / improved / warn / fail / new / missing / incomparable
    status: str


# -- schema normalization ------------------------------------------------------

def normalize_kernels(document: Dict[str, Any]) -> List[Metric]:
    """Flatten a ``BENCH_kernels.json`` document into metrics."""
    metrics: List[Metric] = []
    for row in document.get("kernels", ()):
        base = f"kernels/{row['kernel']}"
        metrics.append(Metric(f"{base}/pytuple_s", row["pytuple_s"], "wall"))
        metrics.append(Metric(f"{base}/numpy_s", row["numpy_s"], "wall"))
        metrics.append(
            Metric(f"{base}/speedup", row["speedup"], "ratio", "higher")
        )
    for row in document.get("end_to_end", ()):
        base = (f"end_to_end/{row['family']}"
                f"-n{row['n']}-out{row['out']}-p{row['p']}")
        metrics.append(Metric(f"{base}/pytuple_s", row["pytuple_s"], "wall"))
        metrics.append(Metric(f"{base}/numpy_s", row["numpy_s"], "wall"))
        metrics.append(
            Metric(f"{base}/speedup", row["speedup"], "ratio", "higher")
        )
        if "columnar_s" in row:
            metrics.append(Metric(f"{base}/columnar_s", row["columnar_s"], "wall"))
            metrics.append(
                Metric(f"{base}/columnar_speedup",
                       row["columnar_speedup"], "ratio", "higher")
            )
        metrics.append(Metric(f"{base}/max_load", row["max_load"], "load"))
    return metrics


def normalize_parallel(document: Dict[str, Any]) -> List[Metric]:
    """Flatten a ``BENCH_parallel.json`` document into metrics."""
    metrics: List[Metric] = []
    for row in document.get("rows", ()):
        base = f"parallel/{row['family']}-n{row['n']}-p{row['p']}"
        for workers, seconds in sorted(
            row.get("workers_s", {}).items(), key=lambda kv: int(kv[0])
        ):
            metrics.append(Metric(f"{base}/w{workers}_s", seconds, "wall"))
        for key in sorted(row):
            if key.startswith("speedup_"):
                metrics.append(
                    Metric(f"{base}/{key}", row[key], "ratio", "higher")
                )
        metrics.append(Metric(f"{base}/max_load", row["max_load"], "load"))
    return metrics


def normalize_planner(document: Dict[str, Any]) -> List[Metric]:
    """Flatten a ``BENCH_planner.json`` document into metrics."""
    metrics = [
        Metric("planner/worst_regret", document["worst_regret"], "ratio"),
        Metric("planner/worst_vs_auto", document["worst_vs_auto"], "ratio"),
    ]
    for row in document.get("rows", ()):
        base = f"planner/{row['family']}-{row['skew']}"
        metrics.append(Metric(f"{base}/load_auto", row["measured_auto"], "load"))
        metrics.append(Metric(f"{base}/regret", row["regret"], "ratio"))
    return metrics


def normalize_ivm(document: Dict[str, Any]) -> List[Metric]:
    """Flatten a ``BENCH_ivm.json`` document into metrics."""
    metrics = [
        Metric("ivm/min_small_delta_advantage",
               document["min_small_delta_advantage"], "ratio", "higher"),
    ]
    for row in document.get("rows", ()):
        base = f"ivm/{row['sweep']}-n{row['n']}-d{row['changes']}"
        metrics.append(
            Metric(f"{base}/maintenance_load", row["maintenance_load"], "load")
        )
        metrics.append(
            Metric(f"{base}/recompute_load", row["recompute_load"], "load")
        )
        metrics.append(
            Metric(f"{base}/advantage", row["advantage"], "ratio", "higher")
        )
    return metrics


def validate_baseline(suite: str, document: Dict[str, Any]) -> List[str]:
    """The document's own internal gates; a list of violation messages."""
    problems: List[str] = []
    if suite == "kernels":
        full_scale = document.get("scale") == "full"
        for row in document.get("end_to_end", ()):
            label = f"{row.get('family', 'matmul')} n={row['n']} out={row['out']}"
            if not row.get("reports_identical", False):
                problems.append(f"{label}: backends' cost reports differ")
            if row["speedup"] < 1.0:
                problems.append(
                    f"{label}: numpy slower than pytuple "
                    f"(speedup {row['speedup']:.2f}x)"
                )
            # The columnar end-to-end gate: in the heavy-aggregation
            # regime (products ≫ OUT) the committed full-scale document
            # must show the columnar backend at ≥ 2x over pytuple —
            # anything less means the array-native execution path has
            # stopped engaging end-to-end.
            columnar = row.get("columnar_speedup")
            if full_scale and row.get("family") == "matmul-dense":
                if columnar is None:
                    problems.append(f"{label}: dense row lacks a columnar measurement")
                elif columnar < 2.0:
                    problems.append(
                        f"{label}: columnar end-to-end speedup "
                        f"{columnar:.2f}x below the 2.0x gate"
                    )
            elif columnar is not None and columnar < 0.8:
                problems.append(
                    f"{label}: columnar badly slower than pytuple "
                    f"(speedup {columnar:.2f}x)"
                )
    elif suite == "parallel":
        full_scale = document.get("scale") == "full"
        cores = int(document.get("cores", 0))
        for row in document.get("rows", ()):
            label = f"{row.get('family', 'matmul')} n={row['n']} p={row['p']}"
            if not row.get("identical", False):
                problems.append(
                    f"{label}: worker counts' answers/reports differ"
                )
            speedup = row.get("speedup_4")
            if speedup is None:
                problems.append(f"{label}: row lacks a speedup_4 measurement")
                continue
            # The wall-clock gate only arms on real parallel hardware at
            # full scale; a document measured on fewer cores records
            # honest environment-limited numbers (workers time-slice one
            # CPU) that no threshold can meaningfully judge.
            if full_scale and cores >= PARALLEL_MIN_CORES:
                if row.get("family") == "matmul-dense" and (
                    speedup < PARALLEL_SPEEDUP_GATE
                ):
                    problems.append(
                        f"{label}: process-mode speedup {speedup:.2f}x at 4 "
                        f"workers below the {PARALLEL_SPEEDUP_GATE}x gate "
                        f"on {cores} cores"
                    )
            elif speedup < 0.5:
                problems.append(
                    f"{label}: process mode {1 / speedup:.1f}x slower than "
                    "sequential — dispatch overhead out of control even "
                    "for a time-sliced environment"
                )
    elif suite == "planner":
        if document["worst_vs_auto"] > 1.1:
            problems.append(
                f"cost-based dispatch lost to auto by "
                f"{document['worst_vs_auto']:.2f}x (> 1.1x)"
            )
    elif suite == "ivm":
        full_scale = document.get("scale") == "full"
        gate = float(document.get("gate_advantage", 5.0))
        for row in document.get("rows", ()):
            label = f"{row['sweep']} n={row['n']} delta={row['changes']}"
            if not row.get("identical", False):
                problems.append(
                    f"{label}: incremental answer differs from recompute"
                )
            # The headline IVM gate: at full scale the committed document
            # must show small-delta maintenance beating recompute by the
            # advantage gate — otherwise delta propagation has stopped
            # being |delta|-proportional.
            if full_scale and row["sweep"] == "n" and row["advantage"] < gate:
                problems.append(
                    f"{label}: maintenance advantage {row['advantage']:.1f}x "
                    f"below the {gate:.0f}x gate"
                )
    return problems


# -- comparison ----------------------------------------------------------------

def _factor(metric_kind: str, direction: str,
            baseline: float, fresh: float) -> Optional[float]:
    """Regression factor with > 1 = worse, or None when not measurable."""
    worse, better = (fresh, baseline) if direction == "lower" else (baseline, fresh)
    if better <= 0:
        return None
    if metric_kind == "wall" and baseline < MIN_WALL_S and fresh < MIN_WALL_S:
        return None  # both in the jitter floor
    return worse / better


def _status(kind: str, factor: Optional[float]) -> str:
    if factor is None:
        return "ok"
    if kind == "wall":
        if factor > WALL_FAIL:
            return "fail"
        if factor > WALL_WARN:
            return "warn"
        return "improved" if factor < 1.0 / WALL_WARN else "ok"
    # Deterministic load / ratio metrics.
    if factor > DETERMINISTIC_FAIL:
        return "fail"
    if factor > 1.0:
        return "warn"
    return "improved" if factor < 1.0 else "ok"


def compare_metrics(baseline: List[Metric], fresh: List[Metric],
                    comparable: bool = True) -> List[Finding]:
    """Compare two normalized metric sets, baseline order first.

    ``comparable=False`` (e.g. tiny fresh run vs full-scale baseline)
    still lists both sides but every overlapping metric is
    ``incomparable`` — no thresholds apply across scales.
    """
    fresh_by_name = {metric.name: metric for metric in fresh}
    findings: List[Finding] = []
    for metric in baseline:
        other = fresh_by_name.pop(metric.name, None)
        if other is None:
            findings.append(Finding(metric.name, metric.kind, metric.value,
                                    None, None, "missing"))
            continue
        if not comparable:
            findings.append(Finding(metric.name, metric.kind, metric.value,
                                    other.value, None, "incomparable"))
            continue
        factor = _factor(metric.kind, metric.direction, metric.value,
                         other.value)
        findings.append(Finding(metric.name, metric.kind, metric.value,
                                other.value, factor,
                                _status(metric.kind, factor)))
    for metric in fresh:
        if metric.name in fresh_by_name:
            findings.append(Finding(metric.name, metric.kind, None,
                                    metric.value, None, "new"))
    return findings


# -- fresh runs ----------------------------------------------------------------

def _run_bench(script: str, out_path: str, tiny: bool,
               extra: Tuple[str, ...] = ()) -> Dict[str, Any]:
    """Run one benchmark script as a subprocess; load its JSON document."""
    command = [sys.executable, os.path.join(os.path.dirname(__file__), script),
               "--out", out_path, *extra]
    if tiny:
        command.append("--tiny")
    env = dict(os.environ)
    src = os.path.join(_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(command, env=env, capture_output=True, text=True)
    if completed.returncode not in (0, 1):
        # 1 is the scripts' own gate (e.g. numpy slower) — still produces a
        # document we can diff; anything else is a crash.
        raise RuntimeError(
            f"{script} failed ({completed.returncode}):\n{completed.stderr}"
        )
    with open(out_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _load_json(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _load_harness():
    """Load benchmarks/harness.py with a private registry (no global state)."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "harness.py")
    spec = importlib.util.spec_from_file_location("_regression_harness", path)
    module = importlib.util.module_from_spec(spec)
    # Registration is required: the module's dataclasses resolve their
    # string annotations through sys.modules at class-creation time.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


# -- reporting -----------------------------------------------------------------

def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4f}"


def render_findings(findings: List[Finding], top: Optional[int] = None) -> str:
    """Aligned text table of findings (worst first)."""
    order = {"fail": 0, "warn": 1, "missing": 2, "new": 3, "incomparable": 4,
             "improved": 5, "ok": 6}
    rows = sorted(findings, key=lambda f: (order.get(f.status, 9),
                                           -(f.factor or 0.0), f.name))
    if top is not None:
        rows = rows[:top]
    header = ("status", "factor", "baseline", "fresh", "kind", "metric")
    cells = [header] + [
        (f.status, f"{f.factor:.3f}x" if f.factor is not None else "-",
         _fmt(f.baseline), _fmt(f.fresh), f.kind, f.name)
        for f in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip())
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _record_trend(harness, findings: List[Finding], caption: str) -> None:
    table = harness.registry.table(
        "bench-regression", caption,
        ("metric", "kind", "baseline", "fresh", "factor", "status"),
    )
    for finding in findings:
        table.add(finding.name, finding.kind, _fmt(finding.baseline),
                  _fmt(finding.fresh),
                  f"{finding.factor:.3f}x" if finding.factor is not None else "-",
                  finding.status)


# -- entry point ---------------------------------------------------------------

_SUITES = {
    "ivm": ("bench_ivm.py", IVM_BASELINE, normalize_ivm),
    "kernels": ("bench_backends.py", KERNELS_BASELINE, normalize_kernels),
    "parallel": ("bench_parallel.py", PARALLEL_BASELINE, normalize_parallel),
    "planner": ("bench_planner.py", PLANNER_BASELINE, normalize_planner),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suites", nargs="+", choices=sorted(_SUITES),
                        default=sorted(_SUITES),
                        help="baseline documents to check (default: all)")
    parser.add_argument("--run", action="store_true",
                        help="re-run the benchmark scripts and compare the "
                        "fresh documents against the committed baselines")
    parser.add_argument("--tiny", action="store_true",
                        help="run fresh benchmarks at CI smoke scale "
                        "(incomparable with full-scale baselines: "
                        "report-only by construction)")
    parser.add_argument("--fresh-kernels", default=None, metavar="PATH",
                        help="pre-made fresh BENCH_kernels.json to compare")
    parser.add_argument("--fresh-parallel", default=None, metavar="PATH",
                        help="pre-made fresh BENCH_parallel.json to compare")
    parser.add_argument("--fresh-planner", default=None, metavar="PATH",
                        help="pre-made fresh BENCH_planner.json to compare")
    parser.add_argument("--fresh-ivm", default=None, metavar="PATH",
                        help="pre-made fresh BENCH_ivm.json to compare")
    parser.add_argument("--baseline-kernels", default=KERNELS_BASELINE,
                        metavar="PATH", help=argparse.SUPPRESS)
    parser.add_argument("--baseline-parallel", default=PARALLEL_BASELINE,
                        metavar="PATH", help=argparse.SUPPRESS)
    parser.add_argument("--baseline-planner", default=PLANNER_BASELINE,
                        metavar="PATH", help=argparse.SUPPRESS)
    parser.add_argument("--baseline-ivm", default=IVM_BASELINE,
                        metavar="PATH", help=argparse.SUPPRESS)
    parser.add_argument("--report-only", action="store_true",
                        help="never gate: report regressions but exit 0")
    parser.add_argument("--results", default=os.path.join(
        os.path.dirname(__file__), "results.md"), metavar="PATH",
        help="trend-table destination (default: %(default)s)")
    parser.add_argument("--no-results", action="store_true",
                        help="skip writing the trend table")
    parser.add_argument("--json", action="store_true",
                        help="print the findings as JSON")
    args = parser.parse_args(argv)

    fresh_paths = {"kernels": args.fresh_kernels,
                   "parallel": args.fresh_parallel,
                   "planner": args.fresh_planner,
                   "ivm": args.fresh_ivm}
    baseline_paths = {"kernels": args.baseline_kernels,
                      "parallel": args.baseline_parallel,
                      "planner": args.baseline_planner,
                      "ivm": args.baseline_ivm}
    all_findings: List[Finding] = []
    problems: List[str] = []
    failed = False

    for suite in args.suites:
        script, _default_baseline, normalize = _SUITES[suite]
        baseline_path = baseline_paths[suite]
        if not os.path.exists(baseline_path):
            print(f"ERROR: missing baseline {baseline_path}", file=sys.stderr)
            return 2
        baseline_doc = _load_json(baseline_path)
        try:
            baseline = normalize(baseline_doc)
        except (KeyError, TypeError) as error:
            print(f"ERROR: {os.path.basename(baseline_path)} does not match "
                  f"the {suite} schema: {error!r}", file=sys.stderr)
            return 2
        suite_problems = validate_baseline(suite, baseline_doc)
        problems.extend(f"{suite}: {message}" for message in suite_problems)

        fresh_doc: Optional[Dict[str, Any]] = None
        if fresh_paths[suite]:
            fresh_doc = _load_json(fresh_paths[suite])
        elif args.run:
            out_path = os.path.join(
                os.path.dirname(os.path.abspath(__file__)),
                f"fresh_{suite}.json",
            )
            try:
                fresh_doc = _run_bench(script, out_path, args.tiny)
            except RuntimeError as error:
                print(f"ERROR: {error}", file=sys.stderr)
                return 2

        if fresh_doc is None:
            # Baseline-only validation: list the metrics, no comparison.
            all_findings.extend(
                Finding(m.name, m.kind, m.value, None, None, "baseline")
                for m in baseline
            )
            continue
        comparable = fresh_doc.get("scale") == baseline_doc.get("scale")
        findings = compare_metrics(baseline, normalize(fresh_doc),
                                   comparable=comparable)
        if not comparable:
            print(f"note: {suite} fresh scale "
                  f"{fresh_doc.get('scale')!r} != baseline scale "
                  f"{baseline_doc.get('scale')!r}; thresholds not applied")
        all_findings.extend(findings)

    failed = any(f.status == "fail" for f in all_findings) or bool(problems)
    warned = sum(1 for f in all_findings if f.status == "warn")

    if args.json:
        print(json.dumps({
            "suites": args.suites,
            "report_only": args.report_only,
            "problems": problems,
            "findings": [f.__dict__ for f in all_findings],
            "ok": not failed,
        }, indent=2))
    else:
        print(render_findings(all_findings))
        for message in problems:
            print(f"BASELINE PROBLEM: {message}", file=sys.stderr)
        counts: Dict[str, int] = {}
        for finding in all_findings:
            counts[finding.status] = counts.get(finding.status, 0) + 1
        summary = "  ".join(f"{status}={count}"
                            for status, count in sorted(counts.items()))
        print(f"\n{len(all_findings)} metrics: {summary}")

    if not args.no_results:
        harness = _load_harness()
        caption = ("perf-regression observatory (fresh vs committed baseline)"
                   if (args.run or any(fresh_paths.values()))
                   else "perf-regression observatory (committed baselines)")
        _record_trend(harness, all_findings, caption)
        harness.write_results(args.results)

    if failed and not args.report_only:
        print("FAIL: benchmark regression past threshold", file=sys.stderr)
        return 1
    if failed:
        print("regressions found, but --report-only: exiting 0",
              file=sys.stderr)
    elif warned:
        print(f"{warned} warning(s) within tolerance", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
