"""Maintenance-vs-recompute benchmark for the IVM subsystem.

Measures the metered MPC load of keeping a materialized join-aggregate
view live under deltas (``repro.ivm``, docs/ivm.md) against recomputing
the answer from scratch on the mutated instance, over a sparse
near-diagonal matmul family where a tuple's join neighbourhood is O(1):

* **n sweep** — a fixed small delta applied at growing instance sizes N:
  maintenance load must stay flat (it is |Δ|-proportional) while
  recompute load grows with N, so the advantage ratio widens;
* **delta sweep** — growing batch sizes at fixed N: maintenance load
  scales with |Δ|, closing the gap from the other direction.

Both runs are deterministic (the simulator is seeded and the workload is
constructed, not sampled), so every number in the committed
``BENCH_ivm.json`` is reproducible bit for bit and the regression
observatory (``benchmarks/regression.py``) holds them to the tight
deterministic thresholds.  Every row also re-checks the metamorphic
contract: the incremental answer must equal the recompute answer exactly.

The committed full-scale document gates the headline claim: small-delta
maintenance must beat recompute by at least :data:`ADVANTAGE_GATE` (5x).
``--tiny`` runs a CI-sized sweep where the gate is reported, not
enforced.

Run::

    PYTHONPATH=src python benchmarks/bench_ivm.py --out BENCH_ivm.json
    PYTHONPATH=src python benchmarks/bench_ivm.py --tiny
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List

from repro.config import ExecutionConfig
from repro.core.executor import run_query
from repro.data import Instance, Relation, TreeQuery
from repro.ivm import DeltaBatch, delete, insert, materialize, mutate_instance
from repro.semiring import COUNTING

MATMUL_QUERY = TreeQuery(
    (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
)

#: Full-scale small-delta advantage the committed document must show.
ADVANTAGE_GATE = 5.0

#: The fixed "small delta" of the n sweep.
SMALL_DELTA = 4

FULL_NS = (1000, 4000, 16000)
TINY_NS = (200, 400)
FULL_DELTAS = (4, 16, 64)
TINY_DELTAS = (4, 8)


def sparse_matmul(n: int) -> Instance:
    """Near-diagonal counting matmul: every join value has O(1)
    neighbours, so a delta's neighbourhood never grows with N."""
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"))
    for i in range(n):
        r1.add((i, i), 2)
        r2.add((i, (i + 1) % n), 3)
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)


def make_batch(n: int, changes: int) -> DeltaBatch:
    """A deterministic batch of ``changes`` changes: inserts of new keys
    that join existing diagonal tuples, plus deletions of existing keys —
    all O(1) neighbourhoods, all disjoint."""
    out: List[Any] = []
    for i in range(changes):
        kind = i % 4
        if kind == 0:
            out.append(insert("R1", (n + i, 2 * i), 5))
        elif kind == 1:
            out.append(insert("R2", (2 * i + 1, n + i), 7))
        elif kind == 2:
            out.append(delete("R1", (n // 2 + i, n // 2 + i)))
        else:
            out.append(delete("R2", (n // 4 + i, (n // 4 + i + 1) % n)))
    return DeltaBatch(tuple(out))


def _answer_map(relation) -> Dict[Any, Any]:
    order = sorted(range(len(relation.schema)),
                   key=lambda i: relation.schema[i])
    return {tuple(values[i] for i in order): annotation
            for values, annotation in relation}


def measure(sweep: str, n: int, changes: int, p: int) -> Dict[str, Any]:
    """One row: apply a batch incrementally, recompute from scratch,
    compare loads and answers."""
    instance = sparse_matmul(n)
    batch = make_batch(n, changes)
    config = ExecutionConfig(p=p)
    view = materialize(instance, config)
    result = view.apply(batch)
    recompute = run_query(mutate_instance(instance, batch), config=config)
    identical = _answer_map(view.answer()) == _answer_map(recompute.relation)
    recompute_load = recompute.report.max_load
    advantage = recompute_load / max(1, result.load)
    return {
        "sweep": sweep,
        "family": "matmul-sparse",
        "n": n,
        "changes": changes,
        "runs": result.runs,
        "maintenance_load": result.load,
        "recompute_load": recompute_load,
        "advantage": round(advantage, 3),
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke scale (gate reported, not enforced)")
    parser.add_argument("--p", type=int, default=8, help="number of servers")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON document here")
    args = parser.parse_args(argv)

    ns = TINY_NS if args.tiny else FULL_NS
    deltas = TINY_DELTAS if args.tiny else FULL_DELTAS
    rows = [measure("n", n, SMALL_DELTA, args.p) for n in ns]
    rows += [measure("delta", ns[-1], changes, args.p) for changes in deltas]

    small = [row for row in rows if row["sweep"] == "n"]
    document = {
        "scale": "tiny" if args.tiny else "full",
        "p": args.p,
        "small_delta": SMALL_DELTA,
        "gate_advantage": ADVANTAGE_GATE,
        "min_small_delta_advantage": min(row["advantage"] for row in small),
        "rows": rows,
    }
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    print(f"IVM maintenance vs recompute (p={args.p}, "
          f"scale={document['scale']}); loads are metered\n")
    print(f"{'sweep':>6} {'N':>7} {'|delta|':>8} {'L(maint)':>9} "
          f"{'L(recomp)':>10} {'advantage':>10} {'identical':>9}")
    for row in rows:
        print(f"{row['sweep']:>6} {row['n']:>7} {row['changes']:>8} "
              f"{row['maintenance_load']:>9} {row['recompute_load']:>10} "
              f"{row['advantage']:>9.1f}x {str(row['identical']):>9}")
    if args.out:
        print(f"\ndocument written to {args.out}")

    failures = [f"{row['sweep']} n={row['n']}: answers differ"
                for row in rows if not row["identical"]]
    if not args.tiny:
        for row in small:
            if row["advantage"] < ADVANTAGE_GATE:
                failures.append(
                    f"n={row['n']}: small-delta advantage "
                    f"{row['advantage']:.1f}x below the "
                    f"{ADVANTAGE_GATE:.0f}x gate")
    if failures:
        for message in failures:
            print(f"GATE FAILURE: {message}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
