"""E12 — ablation of the §3.1 heavy/light threshold L = √(N1N2/p).

The worst-case algorithm's four-way decomposition hinges on one design
choice: values with degree ≥ L are heavy.  We scale L by factors
1/16 … 16 and measure the load on (a) a dense-B instance where all four
subqueries are live and (b) a Zipf-skewed instance.  The claim under test:
the paper's threshold (factor 1) sits within a small constant of the best
over the sweep — too small a threshold over-replicates the heavy tasks,
too large a one overloads the light-light grid.
"""

import pytest

from repro.core.matmul_worst_case import matmul_worst_case
from repro.data import DistRelation, Instance, Relation
from repro.mpc import MPCCluster
from repro.semiring import COUNTING
from repro.workloads import MATMUL_QUERY, zipf_matmul

from harness import registry

P = 16
FACTORS = [1 / 16, 1 / 4, 1.0, 4.0, 16.0]


def _dense_instance(n=240):
    r1 = Relation("R1", ("A", "B"), [((i, i % 4), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((i % 4, i), 1) for i in range(n)])
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)


def _loads(instance):
    loads = {}
    for factor in FACTORS:
        cluster = MPCCluster(P)
        view = cluster.view()
        matmul_worst_case(
            DistRelation.load(view, instance.relation("R1")),
            DistRelation.load(view, instance.relation("R2")),
            COUNTING,
            load_factor=factor,
        )
        loads[factor] = cluster.report().max_load
    return loads


@pytest.mark.parametrize("family", ["dense-B", "zipf"])
def test_threshold_ablation(benchmark, family):
    table = registry.table(
        "E12",
        f"§3.1 threshold ablation: load vs L-scale (p={P})",
        ["family", *[f"{f}×L" for f in FACTORS]],
    )
    instance = (
        _dense_instance() if family == "dense-B" else zipf_matmul(240, 240, 24, seed=3)
    )
    loads = benchmark.pedantic(_loads, args=(instance,), rounds=1, iterations=1)
    table.add(family, *[loads[f] for f in FACTORS])
    best = min(loads.values())
    assert loads[1.0] <= 2.5 * best
    # The extremes must be measurably worse on the dense family.
    if family == "dense-B":
        assert max(loads[FACTORS[0]], loads[FACTORS[-1]]) > 1.5 * loads[1.0]
