"""E5/E6 — the §3.3 lower-bound constructions.

The paper proves matching lower bounds for sparse matmul in the idempotent
semiring MPC model.  We build the exact hard families and check the
sandwich: Ω-bound ≤ measured load of Theorem 1's algorithm ≤ O-bound (all
up to constants), i.e. the algorithm is *tight on its own hard instances*.
"""

import pytest

from repro import run_query
from repro.lowerbounds import theorem2_instance, theorem3_instance
from repro.semiring import BOOLEAN
from repro.theory import matmul_lower_bound, matmul_new_load

from harness import registry

P = 16


@pytest.mark.parametrize("n2", [400, 1600, 6400])
def test_theorem2_family(benchmark, n2):
    table = registry.table(
        "E5",
        f"Theorem 2 hard family (N1=100, OUT=N2, p={P}, boolean semiring)",
        ["N2", "L(ours)", "Ω bound", "ratio"],
    )
    hard = theorem2_instance(100, n2, n2, BOOLEAN)
    result = benchmark.pedantic(
        run_query, args=(hard.instance,), kwargs={"p": P}, rounds=1, iterations=1
    )
    lower = matmul_lower_bound(hard.n1, hard.n2, hard.out, P)
    table.add(n2, result.report.max_load, lower, result.report.max_load / lower)
    # Sandwich: measured within constants of the bound on both sides.
    assert result.report.max_load >= lower / 8
    assert result.report.max_load <= 64 * matmul_new_load(hard.n1, hard.n2, hard.out, P)


@pytest.mark.parametrize("out", [256, 4096, 65536])
def test_theorem3_family(benchmark, out):
    table = registry.table(
        "E6",
        f"Theorem 3 hard family (N1=N2=256, p={P}, boolean semiring)",
        ["OUT", "L(ours)", "Ω bound", "O bound", "L/Ω"],
    )
    hard = theorem3_instance(256, 256, out, BOOLEAN)
    result = benchmark.pedantic(
        run_query, args=(hard.instance,), kwargs={"p": P}, rounds=1, iterations=1
    )
    lower = matmul_lower_bound(hard.n1, hard.n2, hard.out, P)
    upper = matmul_new_load(hard.n1, hard.n2, hard.out, P)
    table.add(hard.out, result.report.max_load, lower, upper,
              result.report.max_load / lower)
    assert result.report.max_load >= lower / 8
    assert result.report.max_load <= 64 * upper


def test_theorem3_lower_bound_is_tight_across_out(benchmark):
    """The measured-to-Ω ratio must stay bounded as OUT sweeps three orders
    of magnitude: that is what "matching bound" means operationally."""

    def run():
        ratios = []
        for out in (256, 4096, 65536):
            hard = theorem3_instance(256, 256, out, BOOLEAN)
            result = run_query(hard.instance, p=P)
            lower = matmul_lower_bound(hard.n1, hard.n2, hard.out, P)
            ratios.append(result.report.max_load / lower)
        return ratios

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(ratios) / min(ratios) < 16
