"""E3 — Table 1, row "Star".

Baseline: O(N/p + N·OUT^{1−1/n}/p).  New algorithm (§5):
O((N·OUT/p)^{2/3} + N·OUT^{1/2}/p + (N+OUT)/p), OUT-oblivious.  Swept on the
planted-OUT star family with n = 3 arms.
"""

import pytest

from repro import run_query
from repro.theory import new_algorithm_load, yannakakis_load
from repro.workloads import overlapping_star, planted_out_star, star_instance

from harness import registry

N = 400
P = 16
ARMS = 3
OUT_SWEEP = [3200, 25600, 204800]


def _measure(instance):
    baseline = run_query(instance, p=P, algorithm="yannakakis")
    ours = run_query(instance, p=P, algorithm="auto")
    assert baseline.relation.tuples == ours.relation.tuples
    return baseline, ours


@pytest.mark.parametrize("out", OUT_SWEEP)
def test_table1_star_row(benchmark, out):
    table = registry.table(
        "E3",
        f"Table 1 / star queries ({ARMS} arms, N={N} per relation, p={P})",
        ["OUT", "L(yann)", "L(ours)", "speedup", "th.yann", "th.ours"],
    )
    instance = planted_out_star(arms=ARMS, n=N, out=out)
    baseline, ours = benchmark.pedantic(
        _measure, args=(instance,), rounds=1, iterations=1
    )
    realized = baseline.out_size
    table.add(
        realized,
        baseline.report.max_load,
        ours.report.max_load,
        baseline.report.max_load / max(1, ours.report.max_load),
        yannakakis_load("star", ARMS * N, realized, P, arms=ARMS),
        new_algorithm_load("star", ARMS * N, realized, P, arms=ARMS),
    )
    assert ours.report.max_load <= 16 * new_algorithm_load(
        "star", ARMS * N, realized, P, arms=ARMS
    ) + 4 * ARMS * N / P


@pytest.mark.parametrize("centres", [4, 16, 64])
def test_table1_star_overlapping_family(benchmark, centres):
    """The adversarial regime: every centre produces the same output triples,
    so the full join is centres × OUT while §5 aggregates duplicates away."""
    table = registry.table(
        "E3c",
        f"Star queries, overlapping-centre family (full join = centres × OUT, p={P})",
        ["centres", "OUT", "L(yann)", "L(ours)", "speedup"],
    )
    instance = overlapping_star(arms=ARMS, centres=centres, fan=12)
    baseline, ours = benchmark.pedantic(
        _measure, args=(instance,), rounds=1, iterations=1
    )
    table.add(
        centres,
        baseline.out_size,
        baseline.report.max_load,
        ours.report.max_load,
        baseline.report.max_load / max(1, ours.report.max_load),
    )
    if centres >= 16:
        assert ours.report.max_load < baseline.report.max_load


def test_table1_star_beats_baseline_at_scale(benchmark):
    def run():
        instance = overlapping_star(arms=ARMS, centres=64, fan=12)
        return _measure(instance)

    baseline, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ours.report.max_load < baseline.report.max_load


def test_table1_star_random_family(benchmark):
    table = registry.table(
        "E3b",
        f"Star queries, uniform random family (N={N}, p={P})",
        ["centre dom", "OUT", "L(yann)", "L(ours)"],
    )

    def run():
        rows = []
        for centre_domain in (8, 24):
            instance = star_instance(ARMS, N, 60, centre_domain, seed=centre_domain)
            baseline, ours = _measure(instance)
            rows.append(
                (centre_domain, baseline.out_size, baseline.report.max_load,
                 ours.report.max_load)
            )
        return rows

    for row in benchmark.pedantic(run, rounds=1, iterations=1):
        table.add(*row)
