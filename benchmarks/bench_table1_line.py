"""E2 — Table 1, row "Line".

Baseline: O(N/p + N·OUT/p) (the Yannakakis intermediate for a line query is
Θ(N·OUT) in the worst case).  New algorithm (§4):
O(N·OUT^{1/2}/p + (N·OUT/p)^{2/3} + (N+OUT)/p).  We sweep OUT on the
planted-OUT line family (length 3) and on random line instances, recording
measured loads against both closed forms.
"""

import pytest

from repro import run_query
from repro.ram import evaluate
from repro.theory import new_algorithm_load, yannakakis_load
from repro.workloads import bowtie_line, line_instance, planted_out_line

from harness import registry

N = 600
P = 16
LENGTH = 3
OUT_SWEEP = [600, 2400, 9600, 38400]


def _measure(instance):
    baseline = run_query(instance, p=P, algorithm="yannakakis")
    ours = run_query(instance, p=P, algorithm="auto")
    assert baseline.relation.tuples == ours.relation.tuples
    return baseline, ours


@pytest.mark.parametrize("out", OUT_SWEEP)
def test_table1_line_row(benchmark, out):
    table = registry.table(
        "E2",
        f"Table 1 / line queries (length {LENGTH}, N={N} per relation, p={P})",
        ["OUT", "L(yann)", "L(ours)", "speedup", "th.yann", "th.ours"],
    )
    instance = planted_out_line(length=LENGTH, n=N, out=out)
    baseline, ours = benchmark.pedantic(
        _measure, args=(instance,), rounds=1, iterations=1
    )
    realized = baseline.out_size
    table.add(
        realized,
        baseline.report.max_load,
        ours.report.max_load,
        baseline.report.max_load / max(1, ours.report.max_load),
        yannakakis_load("line", LENGTH * N, realized, P),
        new_algorithm_load("line", LENGTH * N, realized, P),
    )
    assert ours.report.max_load <= 12 * new_algorithm_load("line", LENGTH * N, realized, P)


def test_table1_line_random_family(benchmark):
    """Sanity on non-planted data: both algorithms agree; ours is within its
    bound (the baseline may win at tiny OUT — that is the paper's story too)."""
    table = registry.table(
        "E2b",
        f"Line queries, uniform random family (N={N}, p={P})",
        ["domain", "OUT", "L(yann)", "L(ours)"],
    )

    def run():
        rows = []
        for domain in (35, 70):
            instance = line_instance(LENGTH, N, domain, seed=domain)
            baseline, ours = _measure(instance)
            rows.append((domain, baseline.out_size, baseline.report.max_load,
                         ours.report.max_load))
        return rows

    for row in benchmark.pedantic(run, rounds=1, iterations=1):
        table.add(*row)


@pytest.mark.parametrize("fan_mid", [8, 32, 128])
def test_table1_line_bowtie_family(benchmark, fan_mid):
    """The adversarial regime: the Yannakakis intermediate is J = OUT·fan_mid,
    which its load tracks while §4 aggregates the fat middle away first."""
    table = registry.table(
        "E2c",
        f"Line queries, bowtie family (J = OUT × fan_mid, p={P})",
        ["fan_mid", "OUT", "J/OUT", "L(yann)", "L(ours)", "speedup"],
    )
    instance = bowtie_line(blocks=24, fan_out=24, fan_mid=fan_mid)
    baseline, ours = benchmark.pedantic(
        _measure, args=(instance,), rounds=1, iterations=1
    )
    table.add(
        fan_mid,
        baseline.out_size,
        fan_mid,
        baseline.report.max_load,
        ours.report.max_load,
        baseline.report.max_load / max(1, ours.report.max_load),
    )
    if fan_mid >= 32:
        assert ours.report.max_load < baseline.report.max_load


def test_table1_line_beats_baseline_at_scale(benchmark):
    def run():
        instance = bowtie_line(blocks=24, fan_out=24, fan_mid=128)
        return _measure(instance)

    baseline, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ours.report.max_load < baseline.report.max_load
