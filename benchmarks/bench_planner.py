"""Planner regret harness: predicted vs measured load, per candidate.

Sweeps the conformance generators' five query families × three skew
profiles (moderate sizes — big enough that Table 1's terms separate, small
enough for CI), and for every point:

* asks the planner for its :class:`~repro.planner.Plan` (offline
  statistics, the executor's ``algorithm="cost"`` path);
* runs **every** scored candidate for real and records its measured load;
* reports **regret** = measured(chosen) / min over candidates of measured
  — 1.0 means the planner picked the true winner — and
  **vs_auto** = measured(chosen) / measured(``algorithm="auto"``), the
  ISSUE's acceptance metric (must stay ≤ 1.1, enforced by exit code).

``--calibrate`` refits the cost-model constants first: for every
``algorithm/query_class`` cell it takes the geometric mean of
measured/raw-shape over the sweep and writes
``src/repro/planner/calibration.json`` (the committed fit), then re-plans
under the new constants so the emitted regret rows reflect them.

Results land in ``BENCH_planner.json`` (repo root by default; no
timestamps, so re-runs are byte-stable).  Run directly::

    PYTHONPATH=src python benchmarks/bench_planner.py [--tiny] [--calibrate]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
from typing import Any, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import ExecutionConfig
from repro.conformance.generators import (
    QUERY_FAMILIES,
    SKEW_PROFILES,
    GeneratorConfig,
    materialize,
    random_case,
)
from repro.core.executor import run_query
from repro.planner import (
    CALIBRATION_PATH,
    collect_statistics,
    invalidate_calibration_cache,
    plan_query,
)

SWEEP_SEED = 2020  # PODS 2020 — fixed so the committed JSON is reproducible


def sweep_cases(max_tuples: int, domain: int):
    """One deterministic case per family × skew, counting semiring."""
    config = GeneratorConfig(
        max_tuples=max_tuples, domain=domain, profiles=("counting",),
    )
    rng = random.Random(SWEEP_SEED)
    # random_case cycles families by index and draws skew from the rng; we
    # want the full grid, so drive both axes explicitly and let the rng
    # supply only the per-case seed.
    cases = []
    for family in QUERY_FAMILIES:
        for skew in SKEW_PROFILES:
            grid = GeneratorConfig(
                max_tuples=max_tuples, domain=domain,
                families=(family,), profiles=("counting",), skews=(skew,),
            )
            cases.append(random_case(rng, grid, 0))
    del config
    return cases


def measure_point(case, p: int) -> Dict[str, Any]:
    """Plan, then run every candidate (and ``auto``) for real."""
    instance = materialize(case)
    stats = collect_statistics(instance)
    plan = plan_query(instance, p=p, statistics=stats)

    measured: Dict[str, int] = {}
    predicted: Dict[str, float] = {}
    raw: Dict[str, float] = {}
    for candidate in plan.candidates:
        result = run_query(instance, config=ExecutionConfig(p=p, algorithm=candidate.algorithm))
        measured[candidate.algorithm] = result.report.max_load
        predicted[candidate.algorithm] = round(candidate.predicted_load, 3)
        raw[candidate.algorithm] = round(candidate.raw_load, 3)
    auto = run_query(instance, config=ExecutionConfig(p=p))

    chosen = plan.algorithm
    best_algorithm = min(measured, key=lambda name: (measured[name], name))
    best = max(1, measured[best_algorithm])
    chosen_load = max(1, measured[chosen])
    auto_load = max(1, auto.report.max_load)
    return {
        "family": case.family,
        "skew": case.skew,
        "query_class": case.query_class,
        "case_seed": case.seed,
        "input_size": instance.total_size,
        "p": p,
        "out_estimate": round(stats.out_estimate, 3),
        "out_provenance": stats.out_provenance,
        "chosen": chosen,
        "auto": auto.algorithm,
        "predicted": predicted,
        "raw_shape": raw,
        "measured": measured,
        "measured_auto": auto.report.max_load,
        "best": best_algorithm,
        "regret": round(chosen_load / best, 4),
        "vs_auto": round(chosen_load / auto_load, 4),
    }


def fit_calibration(rows: List[Dict[str, Any]]) -> Dict[str, float]:
    """Geometric-mean fit of measured/raw-shape per algorithm/query_class."""
    logs: Dict[str, List[float]] = {}
    for row in rows:
        for algorithm, load in row["measured"].items():
            shape = row["raw_shape"][algorithm]
            if load <= 0 or shape <= 0:
                continue
            key = f"{algorithm}/{row['query_class']}"
            logs.setdefault(key, []).append(math.log(load / shape))
    return {
        key: round(math.exp(sum(values) / len(values)), 4)
        for key, values in sorted(logs.items())
    }


def write_calibration(constants: Dict[str, float]) -> None:
    document = {
        "note": (
            "Fitted multipliers measured_load / table1_shape, geometric mean "
            "over the bench_planner.py sweep; keys are algorithm/query_class. "
            "Regenerate with: PYTHONPATH=src python benchmarks/bench_planner.py "
            "--calibrate"
        ),
        "sweep_seed": SWEEP_SEED,
        "constants": constants,
    }
    with open(CALIBRATION_PATH, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    invalidate_calibration_cache()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="quick local-iteration scale; the committed "
                        "calibration is fitted at full scale, so the 1.1x "
                        "vs-auto gate is not enforced here")
    parser.add_argument("--calibrate", action="store_true",
                        help="refit and rewrite src/repro/planner/calibration.json "
                        "before the reported sweep")
    parser.add_argument("--p", type=int, default=8, help="number of servers")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_planner.json"),
        metavar="PATH", help="result JSON destination (default: repo root)")
    args = parser.parse_args(argv)

    max_tuples, domain = (40, 8) if args.tiny else (160, 14)
    cases = sweep_cases(max_tuples, domain)

    if args.calibrate:
        rows = [measure_point(case, args.p) for case in cases]
        constants = fit_calibration(rows)
        write_calibration(constants)
        print(f"calibration written: {os.path.normpath(CALIBRATION_PATH)} "
              f"({len(constants)} constants)")

    rows = [measure_point(case, args.p) for case in cases]

    worst_regret = max(row["regret"] for row in rows)
    worst_vs_auto = max(row["vs_auto"] for row in rows)
    document = {
        "scale": "tiny" if args.tiny else "full",
        "p": args.p,
        "max_tuples": max_tuples,
        "domain": domain,
        "sweep_seed": SWEEP_SEED,
        "worst_regret": worst_regret,
        "worst_vs_auto": worst_vs_auto,
        "rows": rows,
    }
    path = os.path.normpath(args.out)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(f"{'family':<10} {'skew':<14} {'class':<12} {'chosen':<26} "
          f"{'L(chosen)':>9} {'L(best)':>8} {'regret':>7} {'vs_auto':>8}")
    for row in rows:
        print(f"{row['family']:<10} {row['skew']:<14} {row['query_class']:<12} "
              f"{row['chosen']:<26} {row['measured'][row['chosen']]:>9} "
              f"{row['measured'][row['best']]:>8} {row['regret']:>7.2f} "
              f"{row['vs_auto']:>8.2f}")
    print(f"written: {path}  worst regret={worst_regret:.2f}  "
          f"worst vs_auto={worst_vs_auto:.2f}")

    if worst_vs_auto > 1.1:
        if args.tiny:
            # The committed constants are fitted at full scale; at toy
            # sizes fixed overheads dominate and mispredictions are
            # expected, so report but don't gate.
            print("note: vs_auto gate not enforced at --tiny scale",
                  file=sys.stderr)
            return 0
        print("FAIL: cost-based dispatch lost to auto by more than 1.1x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
