# Development targets for the repro library.

PYTHON ?= python

.PHONY: install test bench examples table1 clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

table1:
	$(PYTHON) -m repro table1 --scale 300

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
